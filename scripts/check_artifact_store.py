#!/usr/bin/env python3
"""Validate an artifact-store directory (the .sfcart on-disk format).

This checker is the executable definition of the format that
src/core/artifact_store.cpp writes: CI runs it over the bench-smoke
store directory after a warm run, so a writer-side regression (bad
checksum, wrong header field, misnamed file) fails the build even
though the C++ reader would silently treat the file as a miss.

Per file named `<stage>-<hex16>.sfcart`:
  - the 48-byte header leads with magic "SFCARTv1"
  - format_version (u32 at offset 8) matches --format-version
  - stage (u32 at offset 12) agrees with the `<stage>` filename prefix
  - the `<hex16>` filename stem equals the derived file key
    sweep_key(stage, sweep_key(provenance, key)) recomputed from the
    header's raw key (u64 at offset 16) and provenance (u64 at 24)
  - payload_bytes (u64 at offset 32) == file size - 48 exactly
  - checksum (u64 at offset 40) == FNV-1a over the payload
  - only persistable stages appear (sample/topology/delta never
    touch disk)
Across files:
  - with --single-provenance, every file must share one provenance
    (u64 at offset 24). A mixed-provenance directory is legal — the
    reader ignores foreign entries and budget eviction retires them —
    and expected when a CI cache carries artifacts from older commits,
    so by default a mix is only reported, not failed. Pass the flag
    when the directory is known to come from exactly one build (the
    fresh-store smoke in CI does).

Usage: scripts/check_artifact_store.py DIR [--min-files N]
                                       [--format-version V]
                                       [--single-provenance]
Exits nonzero with a message per violation.
"""

import argparse
import os
import struct
import sys

MAGIC = b"SFCARTv1"
HEADER_LEN = 48

# Mirrors SweepStage in src/core/sweep.hpp. Only the stages whose
# rebuild cost clears the serialize/deserialize bar are persisted;
# seeing any other name on disk is a writer bug.
STAGE_NAMES = [
    "sample", "canonical", "ordering", "instance",
    "nfi_histogram", "ffi_histogram", "topology", "delta", "fold",
]
PERSISTABLE = {"canonical", "ordering", "instance",
               "nfi_histogram", "ffi_histogram", "fold"}


def fnv1a(data):
    h = 0xcbf29ce484222325
    for b in data:
        h = ((h ^ b) * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
    return h


def sweep_mix(x):
    """splitmix64 finalizer — mirrors sweep_mix in src/core/sweep.hpp."""
    mask = 0xFFFFFFFFFFFFFFFF
    x = (x + 0x9E3779B97F4A7C15) & mask
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
    return x ^ (x >> 31)


def sweep_key(h, v):
    return sweep_mix(h ^ sweep_mix(v))


def check_file(path, expect_version, errors):
    """Validate one artifact; return its provenance or None on error."""
    name = os.path.basename(path)
    stem = name[: -len(".sfcart")]
    stage_name, sep, hex_key = stem.rpartition("-")
    if not sep or stage_name not in STAGE_NAMES or len(hex_key) != 16:
        errors.append(f"{name}: filename is not <stage>-<hex16>.sfcart")
        return None
    if stage_name not in PERSISTABLE:
        errors.append(f"{name}: stage '{stage_name}' must never be "
                      "persisted")
        return None
    try:
        file_key = int(hex_key, 16)
    except ValueError:
        errors.append(f"{name}: key '{hex_key}' is not hex")
        return None

    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < HEADER_LEN:
        errors.append(f"{name}: {len(blob)} bytes, shorter than the "
                      f"{HEADER_LEN}-byte header")
        return None
    magic = blob[:8]
    version, stage, key, provenance, payload_bytes, checksum = (
        struct.unpack_from("<IIQQQQ", blob, 8))
    payload = blob[HEADER_LEN:]

    if magic != MAGIC:
        errors.append(f"{name}: magic {magic!r} != {MAGIC!r}")
        return None
    if version != expect_version:
        errors.append(f"{name}: format_version {version} != "
                      f"{expect_version}")
    if stage >= len(STAGE_NAMES) or STAGE_NAMES[stage] != stage_name:
        recorded = (STAGE_NAMES[stage] if stage < len(STAGE_NAMES)
                    else f"#{stage}")
        errors.append(f"{name}: header stage {recorded} disagrees with "
                      f"the filename")
    derived = sweep_key(stage, sweep_key(provenance, key))
    if derived != file_key:
        errors.append(f"{name}: filename key {file_key:016x} != "
                      f"sweep_key(stage, sweep_key(provenance, key)) = "
                      f"{derived:016x}")
    if payload_bytes != len(payload):
        errors.append(f"{name}: header claims {payload_bytes} payload "
                      f"bytes, file carries {len(payload)}")
        return None
    actual = fnv1a(payload)
    if checksum != actual:
        errors.append(f"{name}: checksum {checksum:016x} != computed "
                      f"{actual:016x}")
        return None
    return provenance


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dir", help="artifact-store directory")
    parser.add_argument("--min-files", type=int, default=1,
                        help="fail unless at least N valid artifacts "
                             "(default 1)")
    parser.add_argument("--format-version", type=int, default=1,
                        help="expected on-disk format version")
    parser.add_argument("--single-provenance", action="store_true",
                        help="fail if artifacts from more than one build "
                             "coexist (default: report only)")
    opts = parser.parse_args()

    if not os.path.isdir(opts.dir):
        sys.exit(f"error: {opts.dir} is not a directory")

    errors = []
    provenances = {}
    valid = 0
    stage_counts = {}
    for name in sorted(os.listdir(opts.dir)):
        if not name.endswith(".sfcart"):
            if name.startswith("tmp-"):
                errors.append(f"{name}: leftover temp file — a writer "
                              "died between create and rename")
            continue
        prov = check_file(os.path.join(opts.dir, name),
                          opts.format_version, errors)
        if prov is not None:
            valid += 1
            provenances.setdefault(prov, []).append(name)
            stage = name.rpartition("-")[0]
            stage_counts[stage] = stage_counts.get(stage, 0) + 1

    if len(provenances) > 1:
        summary = ", ".join(f"{p:016x} ({len(files)} files)"
                            for p, files in sorted(provenances.items()))
        if opts.single_provenance:
            errors.append(f"mixed provenance across artifacts: {summary}")
        else:
            print(f"note: mixed provenance (stale builds pending "
                  f"eviction): {summary}")
    if valid < opts.min_files:
        errors.append(f"only {valid} valid artifacts, expected at least "
                      f"{opts.min_files}")

    for msg in errors:
        print(f"error: {msg}", file=sys.stderr)
    if errors:
        sys.exit(1)
    per_stage = ", ".join(f"{s}={n}" for s, n in sorted(
        stage_counts.items()))
    print(f"ok: {valid} artifacts valid in {opts.dir} ({per_stage})")


if __name__ == "__main__":
    main()
