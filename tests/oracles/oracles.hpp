// oracles.hpp — brute-force reference implementations for the
// differential suites.
//
// Every function here is written straight from the paper's definitions
// with no shared machinery from the optimized paths: the NFI oracle is
// the O(n²) pairwise double loop of Definition 1, the FFI oracle
// rebuilds the occupied-cell hierarchy with std::map and re-derives the
// interaction list from its geometric definition (children of the
// parent's neighbors, non-adjacent), and the topology oracle assembles
// each interconnect as an explicit edge list for BFS. Slow on purpose —
// the property suites run them on small instances only.
#pragma once

#include <memory>
#include <vector>

#include "core/totals.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "fmm/partition.hpp"
#include "sfc/curve.hpp"
#include "sfc/point.hpp"
#include "testing/domain.hpp"
#include "topology/graph.hpp"
#include "topology/topology.hpp"

namespace sfc::oracle {

/// O(n²) near-field totals straight from the definition: every ordered
/// pair (i, j), i != j, with ||x_i - x_j|| <= radius under `norm`
/// contributes one communication of cost d(owner(i), owner(j)).
/// `sorted` must be the SFC-sorted particle list `part` chunks.
template <int D>
core::CommTotals nfi_pairwise(const std::vector<Point<D>>& sorted,
                              const fmm::Partition& part,
                              const topo::Topology& net, unsigned radius,
                              fmm::NeighborNorm norm);

/// Definitional far-field totals: occupied-cell sets per level built with
/// ordered maps, lowest-sorted-particle ownership, interpolation edges
/// child->parent, anterpolation the mirror, and interaction lists
/// re-derived from the geometric definition. `level` is the finest
/// refinement level of the domain.
template <int D>
fmm::FfiTotals ffi_definitional(const std::vector<Point<D>>& sorted,
                                unsigned level, const fmm::Partition& part,
                                const topo::Topology& net);

/// Explicit-graph twin of a closed-form topology case: rank r occupies
/// the same physical position as in `make_topology`, so every BFS hop
/// distance must equal the closed form exactly.
topo::GraphTopology oracle_graph(const pbt::TopoCase& spec);

/// Both halves of a frozen-assignment ACD snapshot, as the dynamics
/// differential needs them after every move batch.
struct FrozenTotals {
  core::CommTotals nfi;
  fmm::FfiTotals ffi;
};

/// Full-recompute reference for the incremental engine: NFI and FFI
/// totals of `positions` under the particle→rank assignment of `part`,
/// via nfi_pairwise and ffi_definitional. `positions` is whatever order
/// the engine froze (cell ownership is lowest array index, matching the
/// engine's lowest-sorted-particle rule); it is NOT re-sorted here —
/// that is the point: the oracle prices the frozen assignment.
template <int D>
FrozenTotals frozen_totals(const std::vector<Point<D>>& positions,
                           unsigned level, const fmm::Partition& part,
                           const topo::Topology& net, unsigned radius,
                           fmm::NeighborNorm norm);

extern template core::CommTotals nfi_pairwise<2>(const std::vector<Point<2>>&,
                                                 const fmm::Partition&,
                                                 const topo::Topology&,
                                                 unsigned, fmm::NeighborNorm);
extern template core::CommTotals nfi_pairwise<3>(const std::vector<Point<3>>&,
                                                 const fmm::Partition&,
                                                 const topo::Topology&,
                                                 unsigned, fmm::NeighborNorm);
extern template fmm::FfiTotals ffi_definitional<2>(
    const std::vector<Point<2>>&, unsigned, const fmm::Partition&,
    const topo::Topology&);
extern template fmm::FfiTotals ffi_definitional<3>(
    const std::vector<Point<3>>&, unsigned, const fmm::Partition&,
    const topo::Topology&);
extern template FrozenTotals frozen_totals<2>(const std::vector<Point<2>>&,
                                              unsigned, const fmm::Partition&,
                                              const topo::Topology&, unsigned,
                                              fmm::NeighborNorm);
extern template FrozenTotals frozen_totals<3>(const std::vector<Point<3>>&,
                                              unsigned, const fmm::Partition&,
                                              const topo::Topology&, unsigned,
                                              fmm::NeighborNorm);

}  // namespace sfc::oracle
