#include "oracles/oracles.hpp"

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>

namespace sfc::oracle {
namespace {

/// Chebyshev / Manhattan membership test for the near-field ball.
template <int D>
bool within_ball(const Point<D>& a, const Point<D>& b, unsigned radius,
                 fmm::NeighborNorm norm) {
  return norm == fmm::NeighborNorm::kChebyshev
             ? chebyshev(a, b) <= radius
             : manhattan(a, b) <= radius;
}

/// Occupied cells of `sorted` viewed at level `l` (finest = `level`):
/// packed row-major cell key -> lowest sorted-particle index. Ordered
/// map: the oracle's iteration order is the key order, and ownership is
/// a min-fold so order never matters for the totals.
template <int D>
std::map<std::uint64_t, std::uint32_t> occupied_cells(
    const std::vector<Point<D>>& sorted, unsigned level, unsigned l) {
  std::map<std::uint64_t, std::uint32_t> cells;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    Point<D> c{};
    for (int d = 0; d < D; ++d) c[d] = sorted[i][d] >> (level - l);
    const std::uint64_t key = pack(c, l);
    const auto [it, inserted] =
        cells.emplace(key, static_cast<std::uint32_t>(i));
    if (!inserted && it->second > i) {
      it->second = static_cast<std::uint32_t>(i);
    }
  }
  return cells;
}

template <int D>
Point<D> parent_of(const Point<D>& cell) {
  Point<D> p{};
  for (int d = 0; d < D; ++d) p[d] = cell[d] >> 1;
  return p;
}

}  // namespace

template <int D>
core::CommTotals nfi_pairwise(const std::vector<Point<D>>& sorted,
                              const fmm::Partition& part,
                              const topo::Topology& net, unsigned radius,
                              fmm::NeighborNorm norm) {
  core::CommTotals totals;
  const std::size_t n = sorted.size();
  for (std::size_t i = 0; i < n; ++i) {
    const topo::Rank src = part.proc_of(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (!within_ball(sorted[i], sorted[j], radius, norm)) continue;
      totals.hops += net.distance(src, part.proc_of(j));
      ++totals.count;
    }
  }
  return totals;
}

template <int D>
fmm::FfiTotals ffi_definitional(const std::vector<Point<D>>& sorted,
                                unsigned level, const fmm::Partition& part,
                                const topo::Topology& net) {
  fmm::FfiTotals totals;
  if (sorted.empty()) return totals;

  std::vector<std::map<std::uint64_t, std::uint32_t>> levels(level + 1);
  for (unsigned l = 0; l <= level; ++l) {
    levels[l] = occupied_cells<D>(sorted, level, l);
  }

  // Interpolation: every occupied non-root cell sends to its parent
  // (anterpolation is the mirror with identical symmetric distances).
  for (unsigned l = 1; l <= level; ++l) {
    for (const auto& [key, minp] : levels[l]) {
      const Point<D> cell = unpack<D>(key, l);
      const std::uint64_t pk = pack(parent_of(cell), l - 1);
      const std::uint32_t parent_minp = levels[l - 1].at(pk);
      totals.interpolation.hops +=
          net.distance(part.proc_of(minp), part.proc_of(parent_minp));
      ++totals.interpolation.count;
      totals.anterpolation.hops +=
          net.distance(part.proc_of(parent_minp), part.proc_of(minp));
      ++totals.anterpolation.count;
    }
  }

  // Interaction lists, from the geometric definition: the same-level
  // children of the parent's neighbors that are not adjacent to (and
  // distinct from) the cell. Levels 0 and 1 have none.
  for (unsigned l = 2; l <= level; ++l) {
    const std::int64_t parent_side = std::int64_t{1} << (l - 1);
    for (const auto& [key, minp] : levels[l]) {
      const Point<D> cell = unpack<D>(key, l);
      const topo::Rank owner = part.proc_of(minp);
      const Point<D> par = parent_of(cell);
      // Odometer over the parent's {-1,0,1}^D neighbor offsets.
      int off[4];
      for (int d = 0; d < D; ++d) off[d] = -1;
      for (;;) {
        bool zero = true;
        bool in = true;
        Point<D> pn{};
        for (int d = 0; d < D; ++d) {
          if (off[d] != 0) zero = false;
          const std::int64_t v = static_cast<std::int64_t>(par[d]) + off[d];
          if (v < 0 || v >= parent_side) {
            in = false;
            break;
          }
          pn[d] = static_cast<std::uint32_t>(v);
        }
        if (!zero && in) {
          // pn's 2^D children at level l.
          for (std::uint32_t mask = 0; mask < (1u << D); ++mask) {
            Point<D> child{};
            for (int d = 0; d < D; ++d) {
              child[d] = (pn[d] << 1) | ((mask >> d) & 1u);
            }
            if (chebyshev(child, cell) <= 1) continue;  // adjacent or self
            const auto it = levels[l].find(pack(child, l));
            if (it == levels[l].end()) continue;  // unoccupied: silent
            totals.interaction.hops +=
                net.distance(part.proc_of(it->second), owner);
            ++totals.interaction.count;
          }
        }
        int d = 0;
        while (d < D && off[d] == 1) off[d++] = -1;
        if (d == D) break;
        ++off[d];
      }
    }
  }
  return totals;
}

topo::GraphTopology oracle_graph(const pbt::TopoCase& spec) {
  switch (spec.kind) {
    case topo::TopologyKind::kBus:
      return topo::build_path_graph(spec.procs);
    case topo::TopologyKind::kRing:
      return topo::build_ring_graph(spec.procs);
    case topo::TopologyKind::kMesh:
    case topo::TopologyKind::kTorus: {
      // p = 4^m: rank r sits at the ranking curve's point(r) on the
      // 2^m-sided grid, exactly as GridTopologyBase embeds it.
      unsigned m = 0;
      while ((topo::Rank{1} << (2 * m)) < spec.procs) ++m;
      if ((topo::Rank{1} << (2 * m)) != spec.procs) {
        throw std::invalid_argument("mesh/torus oracle: p not a power of 4");
      }
      const std::uint32_t side = 1u << m;
      const auto curve = make_curve<2>(spec.ranking);
      std::vector<std::pair<std::uint32_t, std::uint32_t>> coords;
      coords.reserve(spec.procs);
      for (topo::Rank r = 0; r < spec.procs; ++r) {
        const Point2 p = curve->point(r, m);
        coords.emplace_back(p[0], p[1]);
      }
      return topo::build_mesh_graph(side, coords,
                                    spec.kind == topo::TopologyKind::kTorus);
    }
    case topo::TopologyKind::kQuadtree:
      return topo::build_tree_graph(spec.procs, 4);
    case topo::TopologyKind::kHypercube:
      return topo::build_hypercube_graph(spec.procs);
  }
  throw std::invalid_argument("oracle_graph: unknown topology kind");
}

template <int D>
FrozenTotals frozen_totals(const std::vector<Point<D>>& positions,
                           unsigned level, const fmm::Partition& part,
                           const topo::Topology& net, unsigned radius,
                           fmm::NeighborNorm norm) {
  return {nfi_pairwise<D>(positions, part, net, radius, norm),
          ffi_definitional<D>(positions, level, part, net)};
}

template core::CommTotals nfi_pairwise<2>(const std::vector<Point<2>>&,
                                          const fmm::Partition&,
                                          const topo::Topology&, unsigned,
                                          fmm::NeighborNorm);
template core::CommTotals nfi_pairwise<3>(const std::vector<Point<3>>&,
                                          const fmm::Partition&,
                                          const topo::Topology&, unsigned,
                                          fmm::NeighborNorm);
template fmm::FfiTotals ffi_definitional<2>(const std::vector<Point<2>>&,
                                            unsigned, const fmm::Partition&,
                                            const topo::Topology&);
template fmm::FfiTotals ffi_definitional<3>(const std::vector<Point<3>>&,
                                            unsigned, const fmm::Partition&,
                                            const topo::Topology&);
template FrozenTotals frozen_totals<2>(const std::vector<Point<2>>&, unsigned,
                                       const fmm::Partition&,
                                       const topo::Topology&, unsigned,
                                       fmm::NeighborNorm);
template FrozenTotals frozen_totals<3>(const std::vector<Point<3>>&, unsigned,
                                       const fmm::Partition&,
                                       const topo::Topology&, unsigned,
                                       fmm::NeighborNorm);

}  // namespace sfc::oracle
