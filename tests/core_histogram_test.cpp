// Hop-histogram tests: exact bookkeeping, percentile semantics, and
// agreement with the ACD reducers on the same communication sets.
#include "core/histogram.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "distribution/distribution.hpp"

namespace sfc::core {
namespace {

TEST(HopHistogram, BasicBookkeeping) {
  HopHistogram h(8);
  for (const std::uint64_t d : {0u, 0u, 1u, 3u, 3u, 3u, 8u}) h.add(d);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.hops(), 0 + 0 + 1 + 9 + 8u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(3), 3u);
  EXPECT_EQ(h.bin(5), 0u);
  EXPECT_EQ(h.max_seen(), 8u);
  EXPECT_NEAR(h.mean(), 18.0 / 7.0, 1e-12);
  EXPECT_NEAR(h.local_fraction(), 2.0 / 7.0, 1e-12);
}

TEST(HopHistogram, GrowsBeyondDeclaredMax) {
  HopHistogram h(2);
  h.add(10);
  EXPECT_EQ(h.bin(10), 1u);
  EXPECT_EQ(h.max_seen(), 10u);
}

TEST(HopHistogram, PercentileSemantics) {
  HopHistogram h(10);
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(9);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u);
  EXPECT_EQ(h.percentile(0.95), 9u);
  EXPECT_EQ(h.percentile(1.0), 9u);
  EXPECT_EQ(h.percentile(0.0), 0u);  // smallest d with cum >= 0
}

TEST(HopHistogram, PercentileValidation) {
  HopHistogram h(4);
  EXPECT_THROW(h.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.percentile(1.1), std::invalid_argument);
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty histogram
}

TEST(HopHistogram, AsciiRendering) {
  HopHistogram h(4);
  h.add(0);
  h.add(2);
  h.add(2);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find("0 |"), std::string::npos);
  EXPECT_NE(art.find("2 | ########## 2"), std::string::npos);
  EXPECT_EQ(HopHistogram(3).ascii(), "(empty)\n");
}

class HistogramPipeline : public ::testing::Test {
 protected:
  HistogramPipeline() {
    dist::SampleConfig cfg;
    cfg.count = 2500;
    cfg.level = 7;
    cfg.seed = 5;
    particles_ = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
    curve_ = make_curve<2>(CurveKind::kHilbert);
    instance_ =
        std::make_unique<AcdInstance<2>>(particles_, 7, *curve_);
  }
  std::vector<Point2> particles_;
  std::unique_ptr<Curve<2>> curve_;
  std::unique_ptr<AcdInstance<2>> instance_;
};

TEST_F(HistogramPipeline, NfiHistogramMatchesAcdTotals) {
  const fmm::Partition part(particles_.size(), 256);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                          curve_.get());
  const auto hist = nfi_histogram(*instance_, part, *net, 2);
  const auto totals = instance_->nfi(part, *net, 2);
  EXPECT_EQ(hist.total(), totals.count);
  EXPECT_EQ(hist.hops(), totals.hops);
  EXPECT_DOUBLE_EQ(hist.mean(), totals.acd());
}

TEST_F(HistogramPipeline, FfiHistogramMatchesAcdTotals) {
  const fmm::Partition part(particles_.size(), 256);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                          curve_.get());
  const auto hist = ffi_histogram(*instance_, part, *net);
  const auto totals = instance_->ffi(part, *net).total();
  EXPECT_EQ(hist.total(), totals.count);
  EXPECT_EQ(hist.hops(), totals.hops);
}

TEST_F(HistogramPipeline, MaxNeverExceedsDiameter) {
  const fmm::Partition part(particles_.size(), 256);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                          curve_.get());
  const auto hist = nfi_histogram(*instance_, part, *net, 1);
  EXPECT_LE(hist.max_seen(), net->diameter());
}

TEST_F(HistogramPipeline, HilbertKeepsMoreTrafficLocalThanRowMajor) {
  const fmm::Partition part(particles_.size(), 256);
  const auto row = make_curve<2>(CurveKind::kRowMajor);
  const AcdInstance<2> row_instance(particles_, 7, *row);
  const auto net_h = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                            curve_.get());
  const auto net_r =
      topo::make_topology<2>(topo::TopologyKind::kTorus, 256, row.get());
  const auto hist_h = nfi_histogram(*instance_, part, *net_h, 1);
  const auto hist_r = nfi_histogram(row_instance, part, *net_r, 1);
  EXPECT_GT(hist_h.local_fraction(), hist_r.local_fraction());
  EXPECT_LT(hist_h.mean(), hist_r.mean());
  // Note: row-major's p99 can be *smaller* than Hilbert's — its traffic
  // concentrates at mid distances while Hilbert trades a thin long tail
  // for a large local mass. The mean (ACD) is what the paper ranks by.
}

}  // namespace
}  // namespace sfc::core
