// Study-runner tests at toy scale: result shapes, determinism, and the
// qualitative orderings the paper reports.
#include "core/study.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sfc::core {
namespace {

CombinationStudyConfig small_combination_config() {
  CombinationStudyConfig cfg;
  cfg.particles = 1500;
  cfg.level = 6;  // 64 x 64
  cfg.procs = 64;  // 8 x 8 torus
  cfg.radius = 1;
  cfg.seed = 7;
  cfg.trials = 1;
  return cfg;
}

TEST(CombinationStudy, ShapeMatchesConfig) {
  const auto result = run_combination_study(small_combination_config());
  ASSERT_EQ(result.cells.size(), 3u);
  for (const auto& per_dist : result.cells) {
    ASSERT_EQ(per_dist.size(), 4u);
    for (const auto& row : per_dist) {
      ASSERT_EQ(row.size(), 4u);
      for (const auto& cell : row) {
        EXPECT_GE(cell.nfi_acd, 0.0);
        EXPECT_GE(cell.ffi_acd, 0.0);
      }
    }
  }
}

TEST(CombinationStudy, DeterministicAcrossRuns) {
  const auto a = run_combination_study(small_combination_config());
  const auto b = run_combination_study(small_combination_config());
  for (std::size_t d = 0; d < a.cells.size(); ++d) {
    for (std::size_t r = 0; r < a.cells[d].size(); ++r) {
      for (std::size_t c = 0; c < a.cells[d][r].size(); ++c) {
        ASSERT_DOUBLE_EQ(a.cells[d][r][c].nfi_acd, b.cells[d][r][c].nfi_acd);
        ASSERT_DOUBLE_EQ(a.cells[d][r][c].ffi_acd, b.cells[d][r][c].ffi_acd);
      }
    }
  }
}

TEST(CombinationStudy, RowRowPairingIsWorstDiagonalCell) {
  // Table I shape: among the same-SFC pairings (the diagonal), Row/Row is
  // by far the worst; the paper's full dominance over every off-diagonal
  // cell emerges at paper scale (verified by bench/table1_nfi) — at toy
  // scale we assert the diagonal ordering plus a wide Hilbert margin.
  auto cfg = small_combination_config();
  cfg.particles = 3000;
  cfg.level = 7;
  cfg.procs = 256;
  const auto result = run_combination_study(cfg);
  for (std::size_t d = 0; d < result.cells.size(); ++d) {
    const double row_row = result.cells[d][3][3].nfi_acd;  // index 3 = Row
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_GT(row_row, result.cells[d][k][k].nfi_acd)
          << "dist " << d << " diagonal " << k;
    }
    EXPECT_GT(row_row, 2.0 * result.cells[d][0][0].nfi_acd) << "dist " << d;
  }
}

TEST(CombinationStudy, HilbertProcessorRankingBeatsRowMajorOnAverage) {
  // Row-level comparison: averaged over the four particle orders, Hilbert
  // processor ranking beats row-major ranking for every distribution.
  auto cfg = small_combination_config();
  cfg.particles = 3000;
  cfg.level = 7;
  cfg.procs = 256;
  const auto result = run_combination_study(cfg);
  for (std::size_t d = 0; d < result.cells.size(); ++d) {
    double hilbert_row = 0, rowmajor_row = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      hilbert_row += result.cells[d][0][c].nfi_acd;
      rowmajor_row += result.cells[d][3][c].nfi_acd;
    }
    EXPECT_LT(hilbert_row, rowmajor_row) << "dist " << d;
  }
}

TEST(CombinationStudy, ProgressCallbackFires) {
  auto cfg = small_combination_config();
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.curves = {CurveKind::kHilbert, CurveKind::kMorton};
  std::vector<std::string> messages;
  run_combination_study(cfg, nullptr,
                        [&](const std::string& m) { messages.push_back(m); });
  EXPECT_EQ(messages.size(), 4u);  // 2 x 2 combinations
}

TEST(TopologyStudy, ShapeAndBusIsWorst) {
  TopologyStudyConfig cfg;
  cfg.particles = 1500;
  cfg.level = 6;
  cfg.procs = 64;
  cfg.radius = 2;
  cfg.seed = 11;
  const auto result = run_topology_study(cfg);
  ASSERT_EQ(result.cells.size(), 6u);
  ASSERT_EQ(result.cells[0].size(), 4u);

  // Fig. 6 shape: bus and ring are far worse than mesh/torus for the
  // recursive curves (column 0 = Hilbert). The hypercube's win over the
  // torus only materializes at large processor counts (its diameter is
  // log p vs sqrt p) and is checked by bench/fig6_topologies at scale.
  const double bus = result.cells[0][0].nfi_acd;
  const double ring = result.cells[1][0].nfi_acd;
  const double mesh = result.cells[2][0].nfi_acd;
  const double torus = result.cells[3][0].nfi_acd;
  EXPECT_GT(bus, torus);
  EXPECT_GT(ring, torus);
  EXPECT_LE(torus, mesh + 1e-12);  // wraparound can only help
}

TEST(TopologyStudy, QuadtreeStrongForFfi) {
  // Fig. 6(b): the quadtree is comparable to the hypercube for far-field
  // traffic (its layout mirrors the FFI structure).
  TopologyStudyConfig cfg;
  cfg.particles = 2000;
  cfg.level = 6;
  cfg.procs = 64;
  cfg.seed = 13;
  const auto result = run_topology_study(cfg);
  const double quadtree = result.cells[4][0].ffi_acd;
  const double bus = result.cells[0][0].ffi_acd;
  EXPECT_LT(quadtree, bus);
}

TEST(ScalingStudy, AcdGrowsWithProcessorCount) {
  ScalingStudyConfig cfg;
  cfg.particles = 2000;
  cfg.level = 6;
  cfg.proc_counts = {4, 16, 64, 256};
  cfg.seed = 17;
  const auto result = run_scaling_study(cfg);
  ASSERT_EQ(result.cells.size(), 4u);
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    ASSERT_EQ(result.cells[c].size(), 4u);
    for (std::size_t p = 1; p < 4; ++p) {
      EXPECT_GT(result.cells[c][p].nfi_acd, result.cells[c][p - 1].nfi_acd)
          << "curve " << c << " step " << p;
    }
  }
}

TEST(ScalingStudy, HilbertBeatsRowMajorEverywhere) {
  ScalingStudyConfig cfg;
  cfg.particles = 2000;
  cfg.level = 6;
  cfg.proc_counts = {16, 64, 256};
  cfg.seed = 19;
  const auto result = run_scaling_study(cfg);
  for (std::size_t p = 0; p < cfg.proc_counts.size(); ++p) {
    EXPECT_LT(result.cells[0][p].nfi_acd, result.cells[3][p].nfi_acd);
    EXPECT_LT(result.cells[0][p].ffi_acd, result.cells[3][p].ffi_acd);
  }
}

TEST(AnnsStudy, ShapeAndMonotonicity) {
  AnnsStudyConfig cfg;
  cfg.levels = {2, 3, 4, 5};
  const auto result = run_anns_study(cfg);
  ASSERT_EQ(result.stats.size(), 4u);
  for (const auto& per_curve : result.stats) {
    ASSERT_EQ(per_curve.size(), 4u);
    for (std::size_t l = 1; l < per_curve.size(); ++l) {
      EXPECT_GT(per_curve[l].average, per_curve[l - 1].average);
    }
  }
}

TEST(CombinationStudy, TrialStatisticsAreConsistent) {
  auto cfg = small_combination_config();
  cfg.curves = {CurveKind::kHilbert};
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.trials = 4;
  const auto result = run_combination_study(cfg);
  const auto& stats = result.stats[0][0][0];
  EXPECT_EQ(stats.nfi.count(), 4u);
  EXPECT_EQ(stats.ffi.count(), 4u);
  // The stored cell value is exactly the across-trial mean.
  EXPECT_NEAR(result.cells[0][0][0].nfi_acd, stats.nfi.mean(), 1e-12);
  EXPECT_NEAR(result.cells[0][0][0].ffi_acd, stats.ffi.mean(), 1e-12);
  // Independent trials differ, so the spread is nonzero but small.
  EXPECT_GT(stats.nfi.stddev(), 0.0);
  EXPECT_LT(stats.nfi.ci95_halfwidth(), stats.nfi.mean());
}

TEST(AnnsStudy, TrialsAverageKeepsScale) {
  // Multi-trial combination runs stay in the same ballpark as single-trial
  // (averaging, not accumulation).
  auto cfg = small_combination_config();
  cfg.curves = {CurveKind::kHilbert};
  cfg.distributions = {dist::DistKind::kUniform};
  const auto one = run_combination_study(cfg);
  cfg.trials = 3;
  const auto three = run_combination_study(cfg);
  const double a = one.cells[0][0][0].nfi_acd;
  const double b = three.cells[0][0][0].nfi_acd;
  EXPECT_NEAR(a, b, a * 0.5);
}

}  // namespace
}  // namespace sfc::core
