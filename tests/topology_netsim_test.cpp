// Network-simulation tests: hand-computed latencies, contention
// serialization, and consistency bounds against the static analyses.
#include "topology/netsim.hpp"

#include <gtest/gtest.h>

#include "core/contention.hpp"
#include "distribution/distribution.hpp"
#include "fmm/enumerate.hpp"

namespace sfc::topo {
namespace {

TEST(NetSim, SingleMessageLatencyEqualsHopCount) {
  const std::vector<SimMessage> msgs = {
      {make_point(0, 0), make_point(3, 2)}};
  const auto r = simulate_store_and_forward(msgs, 3, false);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.makespan, 5u);  // 3 X hops + 2 Y hops
  EXPECT_EQ(r.max_latency, 5u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 5.0);
  EXPECT_EQ(r.total_hops, 5u);
  EXPECT_DOUBLE_EQ(r.slowdown, 1.0);  // no contention
}

TEST(NetSim, ZeroHopMessagesDeliverInstantly) {
  const std::vector<SimMessage> msgs = {
      {make_point(1, 1), make_point(1, 1)},
      {make_point(1, 1), make_point(1, 1)}};
  const auto r = simulate_store_and_forward(msgs, 2, true);
  EXPECT_EQ(r.makespan, 0u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 0.0);
  EXPECT_EQ(r.total_hops, 0u);
}

TEST(NetSim, SharedLinkSerializes) {
  // Two messages both needing link (0,0)->(1,0): the second waits a cycle.
  const std::vector<SimMessage> msgs = {
      {make_point(0, 0), make_point(1, 0)},
      {make_point(0, 0), make_point(2, 0)}};
  const auto r = simulate_store_and_forward(msgs, 2, false);
  // Cycle 1: msg0 delivered; cycle 2: msg1 crosses first link; cycle 3:
  // msg1 crosses second link.
  EXPECT_EQ(r.makespan, 3u);
  EXPECT_EQ(r.max_latency, 3u);
}

TEST(NetSim, DisjointMessagesRunInParallel) {
  const std::vector<SimMessage> msgs = {
      {make_point(0, 0), make_point(1, 0)},
      {make_point(0, 1), make_point(1, 1)},
      {make_point(0, 2), make_point(1, 2)}};
  const auto r = simulate_store_and_forward(msgs, 2, false);
  EXPECT_EQ(r.makespan, 1u);
}

TEST(NetSim, TorusWrapShortensPaths) {
  const std::vector<SimMessage> msgs = {
      {make_point(7, 0), make_point(0, 0)}};
  EXPECT_EQ(simulate_store_and_forward(msgs, 3, true).makespan, 1u);
  EXPECT_EQ(simulate_store_and_forward(msgs, 3, false).makespan, 7u);
}

TEST(NetSim, MakespanAtLeastStaticMaxLinkLoad) {
  // The static link-load analysis lower-bounds the simulated makespan
  // (the hottest link moves one packet per cycle).
  dist::SampleConfig cfg;
  cfg.count = 1500;
  cfg.level = 7;
  cfg.seed = 61;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  const auto curve = make_curve<2>(CurveKind::kMorton);
  const core::AcdInstance<2> instance(particles, 7, *curve);
  const fmm::Partition part(instance.particles().size(), 256);
  const TorusTopology<2> torus(4, *curve);

  std::vector<SimMessage> msgs;
  fmm::nfi_visit<2>(instance.particles(), instance.grid(), 1,
                    fmm::NeighborNorm::kChebyshev,
                    [&](std::size_t i, std::size_t j) {
                      msgs.push_back({torus.coordinate(part.proc_of(j)),
                                      torus.coordinate(part.proc_of(i))});
                    });
  const auto sim = simulate_store_and_forward(msgs, 4, true);
  const auto static_load =
      core::nfi_congestion(instance, part, torus, true, 1);
  EXPECT_GE(sim.makespan, static_load.max_link_load);
  // Total link traversals agree with the static analysis (same routing).
  EXPECT_EQ(sim.total_hops, static_load.hops);
  // Mean latency can never beat the mean hop distance.
  EXPECT_GE(sim.mean_latency,
            static_cast<double>(static_load.hops) /
                static_cast<double>(static_load.messages) -
                1e-9);
}

TEST(NetSim, HilbertPlacementFinishesBeforeRowMajor) {
  dist::SampleConfig cfg;
  cfg.count = 2000;
  cfg.level = 7;
  cfg.seed = 62;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  auto makespan = [&](CurveKind kind) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(particles, 7, *curve);
    const fmm::Partition part(instance.particles().size(), 256);
    const TorusTopology<2> torus(4, *curve);
    std::vector<SimMessage> msgs;
    fmm::nfi_visit<2>(instance.particles(), instance.grid(), 1,
                      fmm::NeighborNorm::kChebyshev,
                      [&](std::size_t i, std::size_t j) {
                        msgs.push_back({torus.coordinate(part.proc_of(j)),
                                        torus.coordinate(part.proc_of(i))});
                      });
    return simulate_store_and_forward(msgs, 4, true).makespan;
  };
  EXPECT_LT(makespan(CurveKind::kHilbert), makespan(CurveKind::kRowMajor));
}

TEST(NetSim, TooLargeGridThrows) {
  EXPECT_THROW(simulate_store_and_forward({}, 9, true),
               std::invalid_argument);
}

TEST(NetSim, EmptyMessageSet) {
  const auto r = simulate_store_and_forward({}, 3, true);
  EXPECT_EQ(r.makespan, 0u);
  EXPECT_EQ(r.messages, 0u);
}

}  // namespace
}  // namespace sfc::topo
