// 3-D curve tests (the paper's future-work extension): bijectivity for all
// curves, Hilbert/snake continuity, Morton bit structure.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sfc/curve.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/rowmajor.hpp"

namespace sfc {
namespace {

using Param3D = std::tuple<CurveKind, unsigned>;

class Curve3DBijectivity : public ::testing::TestWithParam<Param3D> {};

TEST_P(Curve3DBijectivity, IndexIsBijectiveWithInverse) {
  const auto [kind, level] = GetParam();
  const auto curve = make_curve<3>(kind);
  const std::uint64_t n = grid_size<3>(level);
  const std::uint32_t side = 1u << level;

  std::vector<bool> seen(n, false);
  for (std::uint32_t z = 0; z < side; ++z) {
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const Point3 p = make_point(x, y, z);
        const std::uint64_t idx = curve->index(p, level);
        ASSERT_LT(idx, n) << curve->name();
        ASSERT_FALSE(seen[idx]) << curve->name() << " collision at " << idx;
        seen[idx] = true;
        ASSERT_EQ(curve->point(idx, level), p) << curve->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves3D, Curve3DBijectivity,
    ::testing::Combine(::testing::ValuesIn(kCurves3D),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<Param3D>& inf) {
      std::string name(curve_name(std::get<0>(inf.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_L" + std::to_string(std::get<1>(inf.param));
    });

TEST(Hilbert3D, ConsecutiveIndicesAreLatticeNeighbors) {
  const HilbertCurve<3> curve;
  for (unsigned level : {1u, 2u, 3u, 4u}) {
    const std::uint64_t n = grid_size<3>(level);
    Point3 prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < n; ++i) {
      const Point3 cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u)
          << "level " << level << " index " << i;
      prev = cur;
    }
  }
}

TEST(Snake3D, ConsecutiveIndicesAreLatticeNeighbors) {
  const SnakeCurve<3> curve;
  for (unsigned level : {1u, 2u, 3u, 4u}) {
    const std::uint64_t n = grid_size<3>(level);
    Point3 prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < n; ++i) {
      const Point3 cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u)
          << "level " << level << " index " << i;
      prev = cur;
    }
  }
}

TEST(Morton3D, OctantIsTopThreeIndexBits) {
  const MortonCurve<3> curve;
  constexpr unsigned kLevel = 3;
  const std::uint32_t side = 1u << kLevel;
  const std::uint64_t eighth = grid_size<3>(kLevel) / 8;
  for (std::uint32_t z = 0; z < side; ++z) {
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const std::uint64_t idx = curve.index(make_point(x, y, z), kLevel);
        const std::uint64_t expected = (z >= side / 2 ? 4u : 0u) +
                                       (y >= side / 2 ? 2u : 0u) +
                                       (x >= side / 2 ? 1u : 0u);
        ASSERT_EQ(idx / eighth, expected);
      }
    }
  }
}

TEST(Curve3D, RoundTripSampledAtLevel12) {
  std::uint64_t state = 0xABCDEFu;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  constexpr unsigned kLevel = 12;
  const std::uint32_t side = 1u << kLevel;
  for (const CurveKind kind : kCurves3D) {
    const auto curve = make_curve<3>(kind);
    for (int i = 0; i < 1000; ++i) {
      const Point3 p = make_point(next() % side, next() % side, next() % side);
      ASSERT_EQ(curve->point(curve->index(p, kLevel), kLevel), p)
          << curve->name();
    }
  }
}

}  // namespace
}  // namespace sfc
