// Time-series sampler tests under a fake clock: ring-buffer wraparound,
// counter-rate derivation across trimmed history, JSON structure, and a
// round-trip of the Prometheus text exposition through a minimal parser.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sfc::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

/// Blank registry + sampler per test: these suites assert exact series
/// contents, which only works from a known-empty starting state.
class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(Sampler::instance().running());
    Registry::instance().reset_for_testing();
    Sampler::instance().clear();
  }
  void TearDown() override {
    Sampler::instance().clear();
    Registry::instance().reset_for_testing();
  }
};

TEST_F(SamplerTest, RingBufferWrapsToCapacity) {
  Sampler::instance().configure(100, 4);
  Counter& c = Registry::instance().counter("test.sampler.wrap");
  for (std::uint64_t i = 1; i <= 10; ++i) {
    c.add(1);
    Sampler::instance().sample_once(i * kSecond);
  }
  EXPECT_EQ(Sampler::instance().tick_count(), 10u);

  const std::string json = Sampler::instance().json();
  // Capacity 4: only the newest four points survive — t = 7..10 s.
  EXPECT_EQ(json.find("\"t_ns\":" + std::to_string(6 * kSecond)),
            std::string::npos)
      << json;
  for (std::uint64_t t = 7; t <= 10; ++t) {
    EXPECT_NE(json.find("\"t_ns\":" + std::to_string(t * kSecond)),
              std::string::npos)
        << "missing t=" << t << "s in " << json;
  }
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ticks\":10"), std::string::npos) << json;
}

TEST_F(SamplerTest, CounterRateDerivation) {
  Sampler::instance().configure(100, 16);
  Counter& c = Registry::instance().counter("test.sampler.rate");

  c.add(100);
  Sampler::instance().sample_once(1 * kSecond);  // first point: rate 0
  c.add(300);
  Sampler::instance().sample_once(2 * kSecond);  // +300 over 1s -> 300/s
  c.add(100);
  Sampler::instance().sample_once(4 * kSecond);  // +100 over 2s -> 50/s

  const std::string json = Sampler::instance().json();
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate_per_s\":[0,300,50]"), std::string::npos)
      << json;
}

TEST_F(SamplerTest, RateSurvivesRingTrim) {
  // The rate base is the last raw sample, not the oldest retained point:
  // trimming history must not corrupt the next derivative.
  Sampler::instance().configure(100, 2);
  Counter& c = Registry::instance().counter("test.sampler.trim");
  for (std::uint64_t i = 1; i <= 5; ++i) {
    c.add(10);
    Sampler::instance().sample_once(i * kSecond);
  }
  // Every step after the first is +10 over 1s; with capacity 2 the two
  // retained rates are both 10/s.
  const std::string json = Sampler::instance().json();
  EXPECT_NE(json.find("\"rate_per_s\":[10,10]"), std::string::npos) << json;
}

TEST_F(SamplerTest, GaugesCarryNoRateAndHistogramsSampleCounts) {
  Sampler::instance().configure(100, 8);
  Registry::instance().gauge("test.sampler.gauge").set(2.5);
  Histogram& h = Registry::instance().histogram("test.sampler.hist");
  h.record(5);
  h.record(6);
  Sampler::instance().sample_once(kSecond);

  const std::string json = Sampler::instance().json();
  EXPECT_NE(json.find("\"test.sampler.gauge\":{\"kind\":\"gauge\""),
            std::string::npos)
      << json;
  // Histograms appear as a derived ".count" counter series.
  EXPECT_NE(
      json.find("\"test.sampler.hist.count\":{\"kind\":\"counter\""),
      std::string::npos)
      << json;
  // The gauge series object must not contain a rate array. Check within
  // the gauge's object slice (up to its closing brace).
  const auto gpos = json.find("\"test.sampler.gauge\"");
  const auto gend = json.find('}', json.find("]", gpos));
  EXPECT_EQ(json.substr(gpos, gend - gpos).find("rate_per_s"),
            std::string::npos)
      << json;
}

TEST_F(SamplerTest, StartStopBackgroundThread) {
  Sampler::instance().configure(5, 8);
  Registry::instance().counter("test.sampler.bg").add(1);
  Sampler::instance().start();
  EXPECT_TRUE(Sampler::instance().running());
  // Don't assert a tick happened (timing): only that stop() joins
  // cleanly and the sampler is reusable afterwards.
  Sampler::instance().stop();
  EXPECT_FALSE(Sampler::instance().running());
  Sampler::instance().sample_once(kSecond);
  EXPECT_GE(Sampler::instance().tick_count(), 1u);
}

// ---------------------------------------------------------------- prometheus

/// Minimal parser for the subset of the text exposition format the
/// exporter emits: TYPE declarations and name[{le="..."}] value samples.
struct PromDoc {
  std::map<std::string, std::string> types;
  std::vector<std::pair<std::string, double>> samples;  // full name w/ labels
};

void parse_prometheus(const std::string& text, PromDoc* doc) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      doc->types[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    doc->samples.emplace_back(line.substr(0, space),
                              std::stod(line.substr(space + 1)));
  }
}

double sample_value(const PromDoc& doc, const std::string& key) {
  for (const auto& [name, v] : doc.samples) {
    if (name == key) return v;
  }
  ADD_FAILURE() << "sample not found: " << key;
  return -1.0;
}

TEST_F(SamplerTest, PrometheusRoundTrip) {
  Registry::instance().counter("test.prom/counter").add(42);
  Registry::instance().gauge("test.prom.gauge").set(1.5);
  Histogram& h = Registry::instance().histogram("test.prom.hist");
  h.record(3);    // bucket le=3
  h.record(3);
  h.record(100);  // bucket le=127

  const std::string text = prometheus_text();
  SCOPED_TRACE(text);
  PromDoc doc;
  ASSERT_NO_FATAL_FAILURE(parse_prometheus(text, &doc));

  // Name sanitization: '/' and '.' become '_', prefix added.
  EXPECT_EQ(doc.types.at("sfcacd_test_prom_counter"), "counter");
  EXPECT_EQ(doc.types.at("sfcacd_test_prom_gauge"), "gauge");
  EXPECT_EQ(doc.types.at("sfcacd_test_prom_hist"), "histogram");
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_counter"), 42.0);
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_gauge"), 1.5);
  // Histogram: cumulative buckets, +Inf == _count, exact _sum.
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_hist_bucket{le=\"3\"}"),
            2.0);
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_hist_bucket{le=\"127\"}"),
            3.0);
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_hist_bucket{le=\"+Inf\"}"),
            3.0);
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_hist_sum"), 106.0);
  EXPECT_EQ(sample_value(doc, "sfcacd_test_prom_hist_count"), 3.0);
}

TEST(PrometheusName, SanitizesEveryIllegalCharacter) {
  EXPECT_EQ(prometheus_metric_name("pool.queue_wait_ns"),
            "sfcacd_pool_queue_wait_ns");
  EXPECT_EQ(prometheus_metric_name("a-b/c d:e"), "sfcacd_a_b_c_d_e");
  EXPECT_EQ(prometheus_metric_name("Already_OK_123"),
            "sfcacd_Already_OK_123");
}

}  // namespace
}  // namespace sfc::obs
