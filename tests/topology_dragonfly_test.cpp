// Dragonfly tests: closed-form distances against the BFS oracle, the
// global-link pairing bijection, and diameter properties.
#include "topology/dragonfly.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/graph.hpp"

namespace sfc::topo {
namespace {

GraphTopology dragonfly_graph(const DragonflyTopology& df) {
  const Rank a = df.routers_per_group();
  const Rank g = df.groups();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Intra-group complete graphs.
  for (Rank s = 0; s < g; ++s) {
    for (Rank i = 0; i < a; ++i) {
      for (Rank j = i + 1; j < a; ++j) {
        edges.emplace_back(s * a + i, s * a + j);
      }
    }
  }
  // One global link per ordered group pair (emit each once, s < d).
  for (Rank s = 0; s < g; ++s) {
    for (Rank d = s + 1; d < g; ++d) {
      edges.emplace_back(s * a + df.gateway(s, d), d * a + df.gateway(d, s));
    }
  }
  return GraphTopology(df.size(), std::move(edges));
}

class DragonflySize : public ::testing::TestWithParam<Rank> {};

TEST_P(DragonflySize, MatchesGraphOracle) {
  const DragonflyTopology df(GetParam());
  const auto oracle = dragonfly_graph(df);
  ASSERT_EQ(df.size(), oracle.size());
  for (Rank x = 0; x < df.size(); ++x) {
    for (Rank y = 0; y < df.size(); ++y) {
      ASSERT_EQ(df.distance(x, y), oracle.distance(x, y))
          << "a=" << GetParam() << " (" << x << "," << y << ")";
    }
  }
}

TEST_P(DragonflySize, GatewayPairingIsBijective) {
  const DragonflyTopology df(GetParam());
  const Rank g = df.groups();
  for (Rank s = 0; s < g; ++s) {
    std::set<Rank> used;
    for (Rank d = 0; d < g; ++d) {
      if (d == s) continue;
      const Rank i = df.gateway(s, d);
      ASSERT_LT(i, df.routers_per_group());
      ASSERT_TRUE(used.insert(i).second)
          << "router reused for two global links";
      // The reverse gateway must point back.
      ASSERT_EQ(df.gateway(d, s), (s + g - d - 1) % g);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DragonflySize,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Dragonfly, MinimalSizesAreNonPowerOfTwoAndCorrect) {
  // p = a(a+1) is never a power of two for a > 1 — the sizes that shake
  // out divide/modulo assumptions tuned for power-of-two topologies.
  const DragonflyTopology one(1);  // 2 groups of 1 router: a single link
  EXPECT_EQ(one.size(), 2u);
  EXPECT_EQ(one.groups(), 2u);
  EXPECT_EQ(one.distance(0, 0), 0u);
  EXPECT_EQ(one.distance(0, 1), 1u);
  EXPECT_EQ(one.distance(1, 0), 1u);
  EXPECT_EQ(one.diameter(), 1u);  // a=1 is the only diameter-1 dragonfly

  const DragonflyTopology two(2);
  EXPECT_EQ(two.size(), 6u);
  EXPECT_EQ(two.groups(), 3u);
  EXPECT_EQ(two.diameter(), 3u);

  const DragonflyTopology three(3);
  EXPECT_EQ(three.size(), 12u);
  EXPECT_EQ(three.groups(), 4u);
  EXPECT_EQ(three.diameter(), 3u);
}

TEST(Dragonfly, TableFillMatchesDistanceAtMinimalSizes) {
  // The one-pass fill_table override must agree with the closed form on
  // every pair, including the degenerate a=1 network.
  for (const Rank a : {1u, 2u, 3u}) {
    const DragonflyTopology df(a);
    const DistanceTable& t = df.dense_table();
    ASSERT_EQ(t.procs(), df.size());
    for (Rank x = 0; x < df.size(); ++x) {
      for (Rank y = 0; y < df.size(); ++y) {
        EXPECT_EQ(t(x, y), df.distance(x, y))
            << "a=" << a << " (" << x << "," << y << ")";
      }
    }
  }
}

TEST(Dragonfly, DistancesAreBounded) {
  const DragonflyTopology df(8);  // 72 processors
  std::uint64_t max_d = 0;
  for (Rank x = 0; x < df.size(); ++x) {
    for (Rank y = 0; y < df.size(); ++y) {
      max_d = std::max(max_d, df.distance(x, y));
    }
  }
  EXPECT_EQ(max_d, 3u);
  EXPECT_EQ(df.diameter(), 3u);
}

TEST(Dragonfly, SizeFormula) {
  EXPECT_EQ(DragonflyTopology(4).size(), 20u);
  EXPECT_EQ(DragonflyTopology(8).size(), 72u);
  EXPECT_THROW(DragonflyTopology(0), std::invalid_argument);
}

TEST(Dragonfly, BeatsRingAtEqualSize) {
  // The point of high-radix topologies: diameter 3 vs p/2.
  const DragonflyTopology df(8);
  const Rank p = df.size();
  double df_sum = 0, ring_sum = 0;
  for (Rank x = 0; x < p; ++x) {
    for (Rank y = 0; y < p; ++y) {
      df_sum += static_cast<double>(df.distance(x, y));
      const Rank d = x > y ? x - y : y - x;
      ring_sum += static_cast<double>(std::min<Rank>(d, p - d));
    }
  }
  EXPECT_LT(df_sum, ring_sum / 3.0);
}

}  // namespace
}  // namespace sfc::topo
