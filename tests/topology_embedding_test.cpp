// Tests of the SFC processor-ranking embedding on mesh/torus: the rank ->
// coordinate table must be the curve's traversal, and Hilbert ranking must
// place consecutive ranks on physically adjacent processors.
#include <gtest/gtest.h>

#include "sfc/curve.hpp"
#include "topology/grid.hpp"

namespace sfc::topo {
namespace {

TEST(Embedding, CoordinateTableIsCurveTraversal) {
  for (const CurveKind kind : kPaperCurves) {
    const auto curve = make_curve<2>(kind);
    const TorusTopology<2> torus(4, *curve);
    for (Rank r = 0; r < torus.size(); ++r) {
      ASSERT_EQ(torus.coordinate(r), curve->point(r, 4)) << curve->name();
    }
  }
}

TEST(Embedding, HilbertConsecutiveRanksAreAdjacentProcessors) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const MeshTopology<2> mesh(5, *curve);
  for (Rank r = 0; r + 1 < mesh.size(); ++r) {
    ASSERT_EQ(mesh.distance(r, r + 1), 1u) << "rank " << r;
  }
}

TEST(Embedding, RowMajorConsecutiveRanksWrapRows) {
  const auto curve = make_curve<2>(CurveKind::kRowMajor);
  const MeshTopology<2> mesh(3, *curve);
  const std::uint32_t side = 8;
  for (Rank r = 0; r + 1 < mesh.size(); ++r) {
    const auto d = mesh.distance(r, r + 1);
    if ((r + 1) % side == 0) {
      // End of a row: the next rank sits at the start of the next row.
      ASSERT_EQ(d, side - 1 + 1) << "rank " << r;
    } else {
      ASSERT_EQ(d, 1u) << "rank " << r;
    }
  }
}

TEST(Embedding, AverageNeighborRankDistanceOrdering) {
  // The locality of the ranking itself: average |rank distance| between
  // physically adjacent processors. Hilbert must beat row-major.
  auto avg_rank_gap = [](CurveKind kind) {
    const auto curve = make_curve<2>(kind);
    constexpr unsigned kLevel = 5;
    const std::uint32_t side = 1u << kLevel;
    double sum = 0;
    std::uint64_t pairs = 0;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const auto r = curve->index(make_point(x, y), kLevel);
        if (x + 1 < side) {
          const auto r2 = curve->index(make_point(x + 1, y), kLevel);
          sum += static_cast<double>(r2 > r ? r2 - r : r - r2);
          ++pairs;
        }
        if (y + 1 < side) {
          const auto r2 = curve->index(make_point(x, y + 1), kLevel);
          sum += static_cast<double>(r2 > r ? r2 - r : r - r2);
          ++pairs;
        }
      }
    }
    return sum / static_cast<double>(pairs);
  };
  // This is ANNS viewed from the processor side; Z/row beat Hilbert/Gray
  // under it (the paper's surprising Fig. 5 result), so only sanity-check
  // that all values are finite and positive and row-major has the known
  // (N+1)/2 value.
  EXPECT_NEAR(avg_rank_gap(CurveKind::kRowMajor), (32.0 + 1.0) / 2.0, 1e-9);
  EXPECT_GT(avg_rank_gap(CurveKind::kHilbert), 1.0);
}

TEST(Embedding, GridTooLargeThrows) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  EXPECT_THROW(MeshTopology<2>(16, *curve), std::invalid_argument);
}

TEST(Embedding, SideAndLevelAccessors) {
  const auto curve = make_curve<2>(CurveKind::kMorton);
  const TorusTopology<2> torus(3, *curve);
  EXPECT_EQ(torus.level(), 3u);
  EXPECT_EQ(torus.side(), 8u);
  EXPECT_EQ(torus.size(), 64u);
}

}  // namespace
}  // namespace sfc::topo
