// Cross-module invariants that tie independently implemented components
// together. The headline is the paper's own Section V reduction: "the
// ANNS can be easily modeled within our method" — feed every grid point
// through the ACD pipeline with one particle per processor on a bus, and
// the NFI ACD *is* the ANNS. Independent code paths (core/anns.hpp's
// index-table sweep vs the fmm occupancy-window enumeration over a
// topology) must agree exactly.
#include <gtest/gtest.h>

#include <cstdlib>

#include "comm/primitives.hpp"
#include "core/acd.hpp"
#include "core/anns.hpp"
#include "core/histogram.hpp"
#include "fmm/enumerate.hpp"
#include "topology/linear.hpp"

namespace sfc::core {
namespace {

/// Full-grid particle set (every cell occupied).
std::vector<Point2> full_grid(unsigned level) {
  std::vector<Point2> cells;
  const std::uint32_t side = 1u << level;
  cells.reserve(grid_size<2>(level));
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      cells.push_back(make_point(x, y));
    }
  }
  return cells;
}

class AnnsViaAcd : public ::testing::TestWithParam<CurveKind> {};

TEST_P(AnnsViaAcd, PaperSectionVReduction) {
  // Input: every point of the resolution; one particle per processor
  // (p = n); processors on a bus labeled in curve order; radius 1 with
  // the Manhattan norm. Then each communication's bus distance is the
  // linear-order distance between neighbors — the ANNS.
  constexpr unsigned kLevel = 5;
  const auto curve = make_curve<2>(GetParam());
  const AcdInstance<2> instance(full_grid(kLevel), kLevel, *curve);
  const auto n = static_cast<topo::Rank>(instance.particles().size());
  const fmm::Partition part(instance.particles().size(), n);
  const topo::BusTopology bus(n);

  const auto totals =
      instance.nfi(part, bus, 1, fmm::NeighborNorm::kManhattan);
  const auto anns = neighbor_stretch(*curve, kLevel, 1);

  EXPECT_DOUBLE_EQ(totals.acd(), anns.average) << curve->name();
  // Ordered pairs are twice the unordered count.
  EXPECT_EQ(totals.count, 2 * anns.pairs) << curve->name();
}

TEST_P(AnnsViaAcd, GeneralizedRadiusReductionToo) {
  // The same reduction holds for the paper's generalized radius — except
  // ANNS divides each pair by its spatial distance while the ACD does
  // not, so compare against a hop-weighted recomputation instead: the
  // NFI hop total equals the sum of |index differences| over all pairs
  // within the Manhattan ball.
  constexpr unsigned kLevel = 4;
  constexpr unsigned kRadius = 3;
  const auto curve = make_curve<2>(GetParam());
  const AcdInstance<2> instance(full_grid(kLevel), kLevel, *curve);
  const auto n = static_cast<topo::Rank>(instance.particles().size());
  const fmm::Partition part(instance.particles().size(), n);
  const topo::BusTopology bus(n);

  const auto totals =
      instance.nfi(part, bus, kRadius, fmm::NeighborNorm::kManhattan);

  // Independent recomputation straight from the definition.
  std::uint64_t expected_hops = 0;
  std::uint64_t expected_count = 0;
  const std::int64_t side = 1 << kLevel;
  for (std::int64_t y = 0; y < side; ++y) {
    for (std::int64_t x = 0; x < side; ++x) {
      for (std::int64_t dy = -static_cast<std::int64_t>(kRadius);
           dy <= static_cast<std::int64_t>(kRadius); ++dy) {
        for (std::int64_t dx = -static_cast<std::int64_t>(kRadius);
             dx <= static_cast<std::int64_t>(kRadius); ++dx) {
          const std::int64_t manhattan_d = std::abs(dx) + std::abs(dy);
          if (manhattan_d == 0 ||
              manhattan_d > static_cast<std::int64_t>(kRadius)) {
            continue;
          }
          const std::int64_t nx = x + dx;
          const std::int64_t ny = y + dy;
          if (nx < 0 || nx >= side || ny < 0 || ny >= side) continue;
          const auto ia = curve->index(
              make_point(static_cast<std::uint32_t>(x),
                         static_cast<std::uint32_t>(y)),
              kLevel);
          const auto ib = curve->index(
              make_point(static_cast<std::uint32_t>(nx),
                         static_cast<std::uint32_t>(ny)),
              kLevel);
          expected_hops += ia > ib ? ia - ib : ib - ia;
          ++expected_count;
        }
      }
    }
  }
  EXPECT_EQ(totals.hops, expected_hops) << curve->name();
  EXPECT_EQ(totals.count, expected_count) << curve->name();
}

INSTANTIATE_TEST_SUITE_P(PaperCurves, AnnsViaAcd,
                         ::testing::ValuesIn(kPaperCurves),
                         [](const ::testing::TestParamInfo<CurveKind>& inf) {
                           std::string name(curve_name(inf.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CrossValidation, HistogramMeanIsAcdOnEveryTopology) {
  dist::SampleConfig cfg;
  cfg.count = 1200;
  cfg.level = 6;
  cfg.seed = 81;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kExponential, cfg);
  const auto curve = make_curve<2>(CurveKind::kGray);
  const AcdInstance<2> instance(particles, 6, *curve);
  const fmm::Partition part(instance.particles().size(), 64);
  for (const topo::TopologyKind kind : topo::kAllTopologies) {
    const auto net = topo::make_topology<2>(kind, 64, curve.get());
    const auto totals = instance.nfi(part, *net, 1);
    const auto hist = nfi_histogram(instance, part, *net, 1);
    ASSERT_DOUBLE_EQ(hist.mean(), totals.acd()) << topology_name(kind);
  }
}

TEST(CrossValidation, ScatterAcdEqualsMeanDistanceFromRoot) {
  // comm scatter from root r is one message to each other rank, so its
  // ACD equals the average distance from r — computable from the
  // topology directly.
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net =
      topo::make_topology<2>(topo::TopologyKind::kTorus, 64, curve.get());
  for (const topo::Rank root : {0u, 17u, 63u}) {
    double sum = 0;
    for (topo::Rank r = 0; r < 64; ++r) {
      sum += static_cast<double>(net->distance(root, r));
    }
    EXPECT_DOUBLE_EQ(
        comm::primitive_acd(*net, comm::Primitive::kScatter, root),
        sum / 63.0);
  }
}

}  // namespace
}  // namespace sfc::core
