// End-to-end ACD pipeline tests: determinism, invariants across
// topologies/processor counts, and paper-shaped orderings at small scale.
#include "core/acd.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace sfc::core {
namespace {

Scenario2 base_scenario() {
  Scenario2 s;
  s.particles = 2000;
  s.level = 7;  // 128 x 128
  s.procs = 256;
  s.particle_curve = CurveKind::kHilbert;
  s.processor_curve = CurveKind::kHilbert;
  s.topology = topo::TopologyKind::kTorus;
  s.distribution = dist::DistKind::kUniform;
  s.radius = 1;
  s.seed = 12345;
  return s;
}

TEST(AcdPipeline, DeterministicAcrossRuns) {
  const auto a = compute_acd<2>(base_scenario());
  const auto b = compute_acd<2>(base_scenario());
  EXPECT_EQ(a.nfi, b.nfi);
  EXPECT_EQ(a.ffi.total(), b.ffi.total());
}

TEST(AcdPipeline, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  const auto serial = compute_acd<2>(base_scenario(), nullptr);
  const auto parallel = compute_acd<2>(base_scenario(), &pool);
  EXPECT_EQ(serial.nfi, parallel.nfi);
  EXPECT_EQ(serial.ffi.total(), parallel.ffi.total());
}

TEST(AcdPipeline, SingleProcessorHasZeroAcd) {
  auto s = base_scenario();
  s.procs = 1;
  const auto r = compute_acd<2>(s);
  EXPECT_GT(r.nfi.count, 0u);
  EXPECT_EQ(r.nfi.hops, 0u);
  EXPECT_EQ(r.ffi.total().hops, 0u);
}

TEST(AcdPipeline, CommunicationCountsIndependentOfTopology) {
  // The set of communications depends only on the particles and their
  // ordering; the topology changes only the distances.
  auto s = base_scenario();
  const auto torus = compute_acd<2>(s);
  s.topology = topo::TopologyKind::kHypercube;
  const auto cube = compute_acd<2>(s);
  s.topology = topo::TopologyKind::kBus;
  const auto bus = compute_acd<2>(s);
  EXPECT_EQ(torus.nfi.count, cube.nfi.count);
  EXPECT_EQ(torus.nfi.count, bus.nfi.count);
  EXPECT_EQ(torus.ffi.total().count, cube.ffi.total().count);
  EXPECT_EQ(torus.ffi.total().count, bus.ffi.total().count);
}

TEST(AcdPipeline, TorusNeverWorseThanMesh) {
  auto s = base_scenario();
  const auto torus = compute_acd<2>(s);
  s.topology = topo::TopologyKind::kMesh;
  const auto mesh = compute_acd<2>(s);
  EXPECT_LE(torus.nfi.hops, mesh.nfi.hops);
  EXPECT_LE(torus.ffi.total().hops, mesh.ffi.total().hops);
}

TEST(AcdPipeline, LargerRadiusAddsCommunications) {
  auto s = base_scenario();
  const auto r1 = compute_acd<2>(s);
  s.radius = 3;
  const auto r3 = compute_acd<2>(s);
  EXPECT_GT(r3.nfi.count, r1.nfi.count);
  // FFI does not depend on the near-field radius.
  EXPECT_EQ(r3.ffi.total(), r1.ffi.total());
}

TEST(AcdPipeline, MoreProcessorsRaiseAcd) {
  // Fewer particles per processor -> more remote neighbors -> higher ACD.
  auto s = base_scenario();
  s.procs = 16;
  const auto small = compute_acd<2>(s);
  s.procs = 1024;
  const auto large = compute_acd<2>(s);
  EXPECT_GT(large.nfi.acd(), small.nfi.acd());
}

TEST(AcdPipeline, RowMajorPairingIsWorstAtSmallScale) {
  // The paper's headline ordering (Tables I): the Row/Row pairing must lose
  // to the Hilbert/Hilbert pairing by a wide margin.
  auto s = base_scenario();
  s.particles = 4000;
  const auto hilbert = compute_acd<2>(s);
  s.particle_curve = CurveKind::kRowMajor;
  s.processor_curve = CurveKind::kRowMajor;
  const auto row = compute_acd<2>(s);
  EXPECT_GT(row.nfi.acd(), 2.0 * hilbert.nfi.acd());
  EXPECT_GT(row.ffi.total().acd(), hilbert.ffi.total().acd());
}

TEST(AcdPipeline, NfiCountMatchesBruteForce) {
  // The NFI communication count equals the number of ordered particle
  // pairs within Chebyshev radius r, independently recomputed.
  auto s = base_scenario();
  s.particles = 300;
  s.level = 5;
  s.radius = 2;
  dist::SampleConfig cfg;
  cfg.count = s.particles;
  cfg.level = s.level;
  cfg.seed = s.seed;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  std::uint64_t expected = 0;
  for (const auto& a : particles) {
    for (const auto& b : particles) {
      if (!(a == b) && chebyshev(a, b) <= 2) ++expected;
    }
  }
  const auto r = compute_acd<2>(s);
  EXPECT_EQ(r.nfi.count, expected);
}

TEST(AcdInstance, ReusableAcrossProcessorCounts) {
  dist::SampleConfig cfg;
  cfg.count = 1000;
  cfg.level = 6;
  cfg.seed = 9;
  auto particles = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const AcdInstance<2> instance(std::move(particles), 6, *curve);

  double prev = -1.0;
  for (const topo::Rank p : {4u, 16u, 64u, 256u}) {
    const fmm::Partition part(instance.particles().size(), p);
    const auto net =
        topo::make_topology<2>(topo::TopologyKind::kTorus, p, curve.get());
    const double acd = instance.nfi(part, *net, 1).acd();
    EXPECT_GT(acd, prev);
    prev = acd;
  }
}

TEST(AcdInstance, ParticlesAreSortedByCurve) {
  dist::SampleConfig cfg;
  cfg.count = 500;
  cfg.level = 6;
  cfg.seed = 10;
  auto particles = dist::sample_particles<2>(dist::DistKind::kNormal, cfg);
  const auto curve = make_curve<2>(CurveKind::kMorton);
  const AcdInstance<2> instance(std::move(particles), 6, *curve);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < instance.particles().size(); ++i) {
    const std::uint64_t idx = curve->index(instance.particles()[i], 6);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
}

TEST(AcdPipeline, ThreeDimensionalScenarioRuns) {
  Scenario3 s;
  s.particles = 500;
  s.level = 4;  // 16^3 grid
  s.procs = 64;
  s.topology = topo::TopologyKind::kTorus;  // 4x4x4 torus
  s.distribution = dist::DistKind::kUniform;
  s.radius = 1;
  s.seed = 5;
  const auto r = compute_acd<3>(s);
  EXPECT_GT(r.nfi.count, 0u);
  EXPECT_GT(r.ffi.total().count, 0u);
  EXPECT_GT(r.nfi.acd(), 0.0);
}

}  // namespace
}  // namespace sfc::core
