// 4-D curve tests: the geometry layer is dimension-generic up to D = 4;
// exercise the generic (non-fast-path) code in Morton/Gray and Skilling's
// Hilbert at the highest supported dimension.
#include <gtest/gtest.h>

#include <vector>

#include "sfc/gray.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/rowmajor.hpp"

namespace sfc {
namespace {

template <typename CurveT>
void expect_bijective_4d(const CurveT& curve, unsigned level) {
  const std::uint64_t n = grid_size<4>(level);
  const std::uint32_t side = 1u << level;
  std::vector<bool> seen(n, false);
  Point<4> p{};
  for (std::uint32_t w = 0; w < side; ++w) {
    for (std::uint32_t z = 0; z < side; ++z) {
      for (std::uint32_t y = 0; y < side; ++y) {
        for (std::uint32_t x = 0; x < side; ++x) {
          p[0] = x;
          p[1] = y;
          p[2] = z;
          p[3] = w;
          const std::uint64_t idx = curve.index(p, level);
          ASSERT_LT(idx, n);
          ASSERT_FALSE(seen[idx]) << "collision at " << idx;
          seen[idx] = true;
          ASSERT_EQ(curve.point(idx, level), p);
        }
      }
    }
  }
}

TEST(Curve4D, HilbertBijective) {
  expect_bijective_4d(HilbertCurve<4>{}, 1);
  expect_bijective_4d(HilbertCurve<4>{}, 2);
  expect_bijective_4d(HilbertCurve<4>{}, 3);
}

TEST(Curve4D, HilbertContinuous) {
  const HilbertCurve<4> curve;
  for (unsigned level : {1u, 2u, 3u}) {
    Point<4> prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < grid_size<4>(level); ++i) {
      const Point<4> cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u)
          << "level " << level << " index " << i;
      prev = cur;
    }
  }
}

TEST(Curve4D, MortonBijective) {
  expect_bijective_4d(MortonCurve<4>{}, 1);
  expect_bijective_4d(MortonCurve<4>{}, 2);
  expect_bijective_4d(MortonCurve<4>{}, 3);
}

TEST(Curve4D, GrayBijectiveAndSingleBitSteps) {
  expect_bijective_4d(GrayCurve<4>{}, 1);
  expect_bijective_4d(GrayCurve<4>{}, 2);
  const GrayCurve<4> curve;
  for (std::uint64_t i = 0; i + 1 < grid_size<4>(2); ++i) {
    const auto a = morton_index(curve.point(i, 2));
    const auto b = morton_index(curve.point(i + 1, 2));
    ASSERT_EQ(std::popcount(a ^ b), 1) << "at " << i;
  }
}

TEST(Curve4D, RowMajorAndSnakeBijective) {
  expect_bijective_4d(RowMajorCurve<4>{}, 2);
  expect_bijective_4d(SnakeCurve<4>{}, 2);
}

TEST(Curve4D, SnakeContinuous) {
  const SnakeCurve<4> curve;
  for (unsigned level : {1u, 2u, 3u}) {
    Point<4> prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < grid_size<4>(level); ++i) {
      const Point<4> cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u);
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace sfc
