// Concurrency and snapshot tests for the obs metrics registry: N threads
// hammering the same counter/histogram must produce exact totals, and the
// JSON snapshot must reflect them.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sfc::obs {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_F(MetricsRegistryTest, ConcurrentCounterAddsAreExact) {
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20'000;
  Counter& counter = Registry::instance().counter("test.concurrent.counter");
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
}

TEST_F(MetricsRegistryTest, ConcurrentHistogramRecordsAreExact) {
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20'000;
  Histogram& hist = Registry::instance().histogram("test.concurrent.hist");
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      // Each thread records a distinct constant so sum/min/max are exact.
      const std::uint64_t v = (t + 1) * 100;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) hist.record(v);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(hist.count(), kThreads * kOpsPerThread);
  std::uint64_t expected_sum = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    expected_sum += (t + 1) * 100 * kOpsPerThread;
  }
  EXPECT_EQ(hist.sum(), expected_sum);
  EXPECT_EQ(hist.min(), 100u);
  EXPECT_EQ(hist.max(), kThreads * 100u);

  // Bucket counts must partition the total count exactly.
  std::uint64_t bucket_total = 0;
  for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
    bucket_total += hist.bucket(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST_F(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  Counter& a = Registry::instance().counter("test.same");
  Counter& b = Registry::instance().counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 = Registry::instance().histogram("test.same.hist");
  Histogram& h2 = Registry::instance().histogram("test.same.hist");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = Registry::instance().gauge("test.same.gauge");
  Gauge& g2 = Registry::instance().gauge("test.same.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST_F(MetricsRegistryTest, JsonSnapshotContainsTotals) {
  Registry::instance().counter("test.json.counter").add(42);
  Registry::instance().gauge("test.json.gauge").set(2.5);
  Histogram& hist = Registry::instance().histogram("test.json.hist");
  hist.record(7);
  hist.record(9);

  const std::string json = Registry::instance().json();
  EXPECT_NE(json.find("\"test.json.counter\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.gauge\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos) << json;
}

TEST_F(MetricsRegistryTest, ResetClearsValuesButKeepsInstruments) {
  Counter& counter = Registry::instance().counter("test.reset.counter");
  counter.add(5);
  Histogram& hist = Registry::instance().histogram("test.reset.hist");
  hist.record(11);
  Registry::instance().reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  // Same name still resolves to the same (now zeroed) instrument.
  EXPECT_EQ(&Registry::instance().counter("test.reset.counter"), &counter);
}

TEST_F(MetricsRegistryTest, HistogramBucketBoundsAreInclusivePowersOfTwo) {
  Histogram& hist = Registry::instance().histogram("test.bounds");
  hist.record(0);  // bucket_of(0) = bit_width(0) = 0 -> le 0
  hist.record(1);  // bit_width(1) = 1 -> le 1
  hist.record(2);  // bit_width(2) = 2 -> le 3
  hist.record(3);  // -> le 3
  hist.record(4);  // -> le 7
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(2), 2u);
  EXPECT_EQ(hist.bucket(3), 1u);
  // A huge value lands in the saturated last bucket.
  hist.record(~std::uint64_t{0});
  EXPECT_EQ(hist.bucket(Histogram::kBucketCount - 1), 1u);
}

TEST_F(MetricsRegistryTest, JsonKeyOrderIsAscendingLexicographic) {
  // Key order is a documented contract: ascending lexicographic
  // regardless of registration order, so snapshots from different
  // processes are byte-comparable.
  Registry::instance().reset_for_testing();
  Registry::instance().counter("test.order.zebra").add(1);
  Registry::instance().counter("test.order.apple").add(2);
  Registry::instance().counter("test.order.mango").add(3);
  const std::string json = Registry::instance().json();
  const auto apple = json.find("test.order.apple");
  const auto mango = json.find("test.order.mango");
  const auto zebra = json.find("test.order.zebra");
  ASSERT_NE(apple, std::string::npos);
  ASSERT_NE(mango, std::string::npos);
  ASSERT_NE(zebra, std::string::npos);
  EXPECT_LT(apple, mango);
  EXPECT_LT(mango, zebra);
}

TEST_F(MetricsRegistryTest, SnapshotEnumeratesSortedWithExactValues) {
  Registry::instance().reset_for_testing();
  Registry::instance().counter("test.snap.b").add(7);
  Registry::instance().counter("test.snap.a").add(4);
  Registry::instance().gauge("test.snap.g").set(1.25);
  Histogram& hist = Registry::instance().histogram("test.snap.h");
  hist.record(3);
  hist.record(1000);

  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "test.snap.a");
  EXPECT_EQ(snap.counters[0].second, 4u);
  EXPECT_EQ(snap.counters[1].first, "test.snap.b");
  EXPECT_EQ(snap.counters[1].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramValues& h = snap.histograms[0];
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 1003u);
  EXPECT_EQ(h.min, 3u);
  EXPECT_EQ(h.max, 1000u);
  ASSERT_EQ(h.buckets.size(), 2u);  // non-empty buckets only
  EXPECT_EQ(h.buckets[0].first, Histogram::bucket_le(Histogram::bucket_of(3)));
  EXPECT_EQ(h.buckets[0].second, 1u);
  std::uint64_t bucket_total = 0;
  for (const auto& [le, n] : h.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count);
}

TEST_F(MetricsRegistryTest, ResetForTestingBlanksExportsButKeepsHandles) {
  Counter& counter = Registry::instance().counter("test.rft.counter");
  counter.add(9);
  Registry::instance().reset_for_testing();
  // Exports are empty...
  const MetricsSnapshot snap = Registry::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  // ...but the retired handle stays valid and updatable (hot paths cache
  // references; parking must not invalidate them).
  counter.add(1);
  EXPECT_EQ(counter.value(), 10u);
  // Re-registering the same name yields a fresh instrument.
  Counter& fresh = Registry::instance().counter("test.rft.counter");
  EXPECT_NE(&fresh, &counter);
  EXPECT_EQ(fresh.value(), 0u);
}

TEST(HistogramBuckets, EveryPowerOfTwoBoundaryExhaustively) {
  // For every non-saturated bucket b >= 1, the three values around its
  // power-of-two boundary must split exactly: 2^(b-1) (the bucket's
  // lowest value) and 2^b - 1 (its inclusive upper bound) map to b, and
  // 2^b is the first value of bucket b+1.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_le(0), 0u);
  for (unsigned b = 1; b < Histogram::kBucketCount - 1; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(Histogram::bucket_of(lo), b) << "low edge of bucket " << b;
    EXPECT_EQ(Histogram::bucket_of(hi), b) << "high edge of bucket " << b;
    EXPECT_EQ(Histogram::bucket_le(b), hi);
    const unsigned next = b + 1 < Histogram::kBucketCount - 1
                              ? b + 1
                              : Histogram::kBucketCount - 1;
    EXPECT_EQ(Histogram::bucket_of(hi + 1), next)
        << "first value past bucket " << b;
    // Consistency between the two static maps: every value in bucket b
    // is <= its inclusive bound, and above the previous bucket's bound.
    EXPECT_LE(hi, Histogram::bucket_le(b));
    EXPECT_GT(lo, Histogram::bucket_le(b - 1));
  }
}

TEST(HistogramBuckets, SaturationAtTheLastBucket) {
  constexpr unsigned last = Histogram::kBucketCount - 1;  // 43
  // The last exactly-resolved value is 2^43 - 1; everything at or above
  // 2^43 saturates into bucket 43, up to and including UINT64_MAX.
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << last) - 1), last);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << last), last);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 50), last);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), last);
}

TEST(HistogramBuckets, RecordedBoundariesLandWhereBucketOfSays) {
  // Dynamic agreement with the static map: record all boundary values
  // and check the bucket array matches bucket_of exactly.
  Histogram hist;
  std::uint64_t expected[Histogram::kBucketCount] = {};
  hist.record(0);
  ++expected[Histogram::bucket_of(0)];
  for (unsigned b = 1; b < 64; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    hist.record(lo);
    ++expected[Histogram::bucket_of(lo)];
    const std::uint64_t hi = lo - 1 + lo;  // 2^b - 1
    hist.record(hi);
    ++expected[Histogram::bucket_of(hi)];
  }
  hist.record(~std::uint64_t{0});
  ++expected[Histogram::bucket_of(~std::uint64_t{0})];
  std::uint64_t total = 0;
  for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
    EXPECT_EQ(hist.bucket(b), expected[b]) << "bucket " << b;
    total += hist.bucket(b);
  }
  EXPECT_EQ(total, hist.count());
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace sfc::obs
