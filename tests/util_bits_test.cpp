// Unit tests for the bit-manipulation primitives.
#include "util/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.hpp"

namespace sfc::util {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bits, Ilog2KnownValues) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(~0ull), 63u);
}

TEST(Bits, Clog2KnownValues) {
  EXPECT_EQ(clog2(0), 0u);
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(4), 2u);
  EXPECT_EQ(clog2(5), 3u);
  EXPECT_EQ(clog2(1ull << 40), 40u);
}

TEST(Bits, Part1By1SpreadsBits) {
  EXPECT_EQ(part1_by1(0u), 0ull);
  EXPECT_EQ(part1_by1(1u), 1ull);
  EXPECT_EQ(part1_by1(0b11u), 0b101ull);
  EXPECT_EQ(part1_by1(0b101u), 0b10001ull);
  EXPECT_EQ(part1_by1(0xFFFFFFFFu), 0x5555555555555555ull);
}

TEST(Bits, Compact1By1InvertsPart1By1) {
  Xoshiro256pp rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(compact1_by1(part1_by1(v)), v);
  }
}

TEST(Bits, Part1By2SpreadsBits) {
  EXPECT_EQ(part1_by2(0u), 0ull);
  EXPECT_EQ(part1_by2(1u), 1ull);
  EXPECT_EQ(part1_by2(0b11u), 0b1001ull);
  EXPECT_EQ(part1_by2(0x1FFFFFu), 0x1249249249249249ull);
}

TEST(Bits, Compact1By2InvertsPart1By2) {
  Xoshiro256pp rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next()) & 0x1FFFFFu;
    EXPECT_EQ(compact1_by2(part1_by2(v)), v);
  }
}

TEST(Bits, Morton2KnownValues) {
  // (x, y) -> interleave with x on even bits.
  EXPECT_EQ(morton2_encode(0, 0), 0ull);
  EXPECT_EQ(morton2_encode(1, 0), 1ull);
  EXPECT_EQ(morton2_encode(0, 1), 2ull);
  EXPECT_EQ(morton2_encode(1, 1), 3ull);
  EXPECT_EQ(morton2_encode(2, 0), 4ull);
  EXPECT_EQ(morton2_encode(7, 7), 63ull);
  EXPECT_EQ(morton2_encode(0, 2), 8ull);
}

TEST(Bits, Morton2RoundTrip) {
  Xoshiro256pp rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    const auto y = static_cast<std::uint32_t>(rng.next());
    const auto code = morton2_encode(x, y);
    EXPECT_EQ(morton2_decode_x(code), x);
    EXPECT_EQ(morton2_decode_y(code), y);
  }
}

TEST(Bits, Morton3KnownValues) {
  EXPECT_EQ(morton3_encode(0, 0, 0), 0ull);
  EXPECT_EQ(morton3_encode(1, 0, 0), 1ull);
  EXPECT_EQ(morton3_encode(0, 1, 0), 2ull);
  EXPECT_EQ(morton3_encode(0, 0, 1), 4ull);
  EXPECT_EQ(morton3_encode(1, 1, 1), 7ull);
  EXPECT_EQ(morton3_encode(2, 0, 0), 8ull);
}

TEST(Bits, Morton3RoundTrip) {
  Xoshiro256pp rng(10);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next()) & 0x1FFFFFu;
    const auto y = static_cast<std::uint32_t>(rng.next()) & 0x1FFFFFu;
    const auto z = static_cast<std::uint32_t>(rng.next()) & 0x1FFFFFu;
    const auto code = morton3_encode(x, y, z);
    EXPECT_EQ(morton3_decode_x(code), x);
    EXPECT_EQ(morton3_decode_y(code), y);
    EXPECT_EQ(morton3_decode_z(code), z);
  }
}

TEST(Bits, GraySuccessiveCodesDifferInOneBit) {
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t a = gray_encode(i);
    const std::uint64_t b = gray_encode(i + 1);
    EXPECT_EQ(std::popcount(a ^ b), 1) << "at i=" << i;
  }
}

TEST(Bits, GrayDecodeInvertsEncode) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
  for (std::uint64_t v = 0; v < 1024; ++v) {
    EXPECT_EQ(gray_encode(gray_decode(v)), v);
  }
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1ull);
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100ull);
  EXPECT_EQ(reverse_bits(0b1101, 4), 0b1011ull);
  // Round trip.
  Xoshiro256pp rng(12);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.next() & 0xFFFFull;
    EXPECT_EQ(reverse_bits(reverse_bits(v, 16), 16), v);
  }
}

TEST(Bits, BaseDigit) {
  // 0b 11 01 00 10 in base 4.
  const std::uint64_t v = 0b11010010;
  EXPECT_EQ(base_digit(v, 0, 2), 0b10ull);
  EXPECT_EQ(base_digit(v, 1, 2), 0b00ull);
  EXPECT_EQ(base_digit(v, 2, 2), 0b01ull);
  EXPECT_EQ(base_digit(v, 3, 2), 0b11ull);
}

}  // namespace
}  // namespace sfc::util
