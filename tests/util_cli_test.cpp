// Unit tests for the command-line parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace sfc::util {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_flag("full", "run at paper scale");
  p.add_option("particles", "particle count", "1000");
  p.add_option("sigma", "normal sigma fraction", "0.2");
  p.add_option("curve", "curve name", "hilbert");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("full"));
  EXPECT_EQ(p.i64("particles"), 1000);
  EXPECT_DOUBLE_EQ(p.f64("sigma"), 0.2);
  EXPECT_EQ(p.str("curve"), "hilbert");
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--particles", "250000", "--full"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_TRUE(p.flag("full"));
  EXPECT_EQ(p.i64("particles"), 250000);
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--sigma=0.5", "--curve=gray"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.f64("sigma"), 0.5);
  EXPECT_EQ(p.str("curve"), "gray");
}

TEST(ArgParser, UnknownOptionFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--particles"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, FlagWithValueFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--full=yes"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, PositionalArgumentFails) {
  auto p = make_parser();
  const char* argv[] = {"prog", "positional"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpRequested) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.usage().find("particles"), std::string::npos);
}

}  // namespace
}  // namespace sfc::util
