// ANNS metric tests: closed forms, brute-force oracle, Xu–Tirthapura
// properties, and the paper's Figure 5 ordering.
#include "core/anns.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/thread_pool.hpp"

namespace sfc::core {
namespace {

/// Brute-force stretch over all pairs within Manhattan radius r.
StretchStats brute_force(const Curve<2>& curve, unsigned level,
                         unsigned radius) {
  const std::int64_t side = 1ll << level;
  double sum = 0, max = 0;
  std::uint64_t pairs = 0;
  for (std::int64_t y1 = 0; y1 < side; ++y1) {
    for (std::int64_t x1 = 0; x1 < side; ++x1) {
      for (std::int64_t y2 = 0; y2 < side; ++y2) {
        for (std::int64_t x2 = 0; x2 < side; ++x2) {
          const std::int64_t d =
              std::abs(x1 - x2) + std::abs(y1 - y2);
          if (d < 1 || d > static_cast<std::int64_t>(radius)) continue;
          // Count unordered pairs once.
          if (y2 < y1 || (y2 == y1 && x2 <= x1)) continue;
          const auto ia = curve.index(
              make_point(static_cast<std::uint32_t>(x1),
                         static_cast<std::uint32_t>(y1)),
              level);
          const auto ib = curve.index(
              make_point(static_cast<std::uint32_t>(x2),
                         static_cast<std::uint32_t>(y2)),
              level);
          const double stretch =
              static_cast<double>(ia > ib ? ia - ib : ib - ia) /
              static_cast<double>(d);
          sum += stretch;
          max = std::max(max, stretch);
          ++pairs;
        }
      }
    }
  }
  return {pairs == 0 ? 0.0 : sum / static_cast<double>(pairs), max, pairs};
}

TEST(Anns, MatchesBruteForceRadius1) {
  for (const CurveKind kind : kPaperCurves) {
    const auto curve = make_curve<2>(kind);
    for (unsigned level : {1u, 2u, 3u, 4u}) {
      const auto fast = neighbor_stretch(*curve, level, 1);
      const auto slow = brute_force(*curve, level, 1);
      ASSERT_EQ(fast.pairs, slow.pairs) << curve->name();
      ASSERT_NEAR(fast.average, slow.average, 1e-9) << curve->name();
      ASSERT_NEAR(fast.maximum, slow.maximum, 1e-9) << curve->name();
    }
  }
}

TEST(Anns, MatchesBruteForceLargerRadius) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  for (unsigned radius : {2u, 3u, 6u}) {
    const auto fast = neighbor_stretch(*curve, 4, radius);
    const auto slow = brute_force(*curve, 4, radius);
    ASSERT_EQ(fast.pairs, slow.pairs) << "radius " << radius;
    ASSERT_NEAR(fast.average, slow.average, 1e-9);
  }
}

TEST(Anns, RowMajorClosedForm) {
  const auto curve = make_curve<2>(CurveKind::kRowMajor);
  for (unsigned level = 1; level <= 8; ++level) {
    const auto stats = neighbor_stretch(*curve, level, 1);
    EXPECT_NEAR(stats.average, rowmajor_anns_closed_form(level), 1e-9)
        << "level " << level;
  }
}

TEST(Anns, PairCountFormula) {
  // Radius-1 unordered neighbor pairs on an N x N grid: 2 * N * (N - 1).
  const auto curve = make_curve<2>(CurveKind::kMorton);
  for (unsigned level : {1u, 2u, 5u, 7u}) {
    const std::uint64_t n = 1ull << level;
    const auto stats = neighbor_stretch(*curve, level, 1);
    EXPECT_EQ(stats.pairs, 2 * n * (n - 1));
  }
}

TEST(Anns, PaperFigure5Ordering) {
  // Fig. 5: Z and row-major beat Gray and Hilbert under ANNS — the paper's
  // surprising result — and the gap widens with resolution.
  std::vector<double> prev(4, 0.0);
  for (unsigned level = 4; level <= 8; ++level) {
    const double h =
        neighbor_stretch(*make_curve<2>(CurveKind::kHilbert), level, 1)
            .average;
    const double z =
        neighbor_stretch(*make_curve<2>(CurveKind::kMorton), level, 1)
            .average;
    const double g =
        neighbor_stretch(*make_curve<2>(CurveKind::kGray), level, 1).average;
    const double r =
        neighbor_stretch(*make_curve<2>(CurveKind::kRowMajor), level, 1)
            .average;
    EXPECT_LT(std::max(z, r), std::min(g, h)) << "level " << level;
    // Monotone growth with resolution for every curve.
    EXPECT_GT(h, prev[0]);
    EXPECT_GT(z, prev[1]);
    EXPECT_GT(g, prev[2]);
    EXPECT_GT(r, prev[3]);
    prev = {h, z, g, r};
  }
}

TEST(Anns, OrderingStableUnderLargerRadius) {
  // Section V: "irregardless the radius used, the relative ordering of the
  // curves was the same".
  for (unsigned radius : {2u, 4u, 6u}) {
    const double h =
        neighbor_stretch(*make_curve<2>(CurveKind::kHilbert), 6, radius)
            .average;
    const double z =
        neighbor_stretch(*make_curve<2>(CurveKind::kMorton), 6, radius)
            .average;
    const double g =
        neighbor_stretch(*make_curve<2>(CurveKind::kGray), 6, radius).average;
    const double r =
        neighbor_stretch(*make_curve<2>(CurveKind::kRowMajor), 6, radius)
            .average;
    EXPECT_LT(std::max(z, r), std::min(g, h)) << "radius " << radius;
  }
}

TEST(Anns, SnakeMatchesRowMajorAsymptotics) {
  // The snake scan is the continuous row-major: identical horizontal
  // neighbor behaviour, vertical stretch differs only at row turns.
  const double snake =
      neighbor_stretch(*make_curve<2>(CurveKind::kSnake), 6, 1).average;
  const double row =
      neighbor_stretch(*make_curve<2>(CurveKind::kRowMajor), 6, 1).average;
  EXPECT_NEAR(snake, row, row * 0.15);
}

TEST(Anns, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  const auto curve = make_curve<2>(CurveKind::kGray);
  const auto serial = neighbor_stretch(*curve, 7, 2, nullptr);
  const auto parallel = neighbor_stretch(*curve, 7, 2, &pool);
  EXPECT_EQ(serial.pairs, parallel.pairs);
  EXPECT_NEAR(serial.average, parallel.average, 1e-9);
  EXPECT_DOUBLE_EQ(serial.maximum, parallel.maximum);
}

TEST(Anns, InvalidArgumentsThrow) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  EXPECT_THROW(neighbor_stretch(*curve, 3, 0), std::invalid_argument);
  EXPECT_THROW(neighbor_stretch(*curve, 13, 1), std::invalid_argument);
}

TEST(AllPairsStretch, DeterministicForSameSeed) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto a = all_pairs_stretch(*curve, 8, 5000, 3);
  const auto b = all_pairs_stretch(*curve, 8, 5000, 3);
  EXPECT_DOUBLE_EQ(a.average, b.average);
  EXPECT_DOUBLE_EQ(a.maximum, b.maximum);
  EXPECT_EQ(a.pairs, 5000u);
}

TEST(AllPairsStretch, StretchIsAtLeastHarmonicallyBounded) {
  // Any pair's stretch is >= 1/(2N) trivially and the average over random
  // pairs must be >= 1/2 for a bijection onto a path... use the weakest
  // safe property: strictly positive and no larger than n/1.
  const auto curve = make_curve<2>(CurveKind::kMorton);
  const auto s = all_pairs_stretch(*curve, 7, 3000, 4);
  EXPECT_GT(s.average, 0.0);
  EXPECT_LE(s.maximum, static_cast<double>(grid_size<2>(7)));
}

TEST(AllPairsStretch, CurveOrderingIsLessDramaticThanAnns) {
  // Xu–Tirthapura note the all-pairs stretch discriminates less than the
  // nearest-neighbor stretch: for random (typically distant) pairs all
  // bijections look similar. Check the Hilbert/row-major ratio is far
  // smaller than under ANNS.
  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  const auto row = make_curve<2>(CurveKind::kRowMajor);
  const double ap_h = all_pairs_stretch(*hilbert, 8, 20000, 5).average;
  const double ap_r = all_pairs_stretch(*row, 8, 20000, 5).average;
  const double ratio_ap = std::max(ap_h, ap_r) / std::min(ap_h, ap_r);
  EXPECT_LT(ratio_ap, 2.0);
}

TEST(Anns, HilbertMnnsIsBoundedBelowByThree) {
  // A continuous curve has min stretch 1 per step, but some neighbor pair
  // must stretch: for Hilbert at level >= 2 the max nearest-neighbor
  // stretch grows with resolution.
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  double prev = 0.0;
  for (unsigned level = 2; level <= 7; ++level) {
    const auto stats = neighbor_stretch(*curve, level, 1);
    EXPECT_GT(stats.maximum, prev);
    prev = stats.maximum;
  }
  EXPECT_GE(prev, 3.0);
}

}  // namespace
}  // namespace sfc::core
