// Hilbert-specific tests: continuity (the defining property), agreement
// with the independent recursive construction up to a symmetry of the
// square, and hand-checked small cases.
#include "sfc/hilbert.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

#include "sfc/recursive_ref.hpp"

namespace sfc {
namespace {

/// The 8 symmetries of the square at side s (the dihedral group D4).
std::vector<std::function<Point2(Point2, std::uint32_t)>> dihedral_maps() {
  return {
      [](Point2 p, std::uint32_t) { return p; },
      [](Point2 p, std::uint32_t s) { return make_point(s - 1 - p[0], p[1]); },
      [](Point2 p, std::uint32_t s) { return make_point(p[0], s - 1 - p[1]); },
      [](Point2 p, std::uint32_t s) {
        return make_point(s - 1 - p[0], s - 1 - p[1]);
      },
      [](Point2 p, std::uint32_t) { return make_point(p[1], p[0]); },
      [](Point2 p, std::uint32_t s) { return make_point(s - 1 - p[1], p[0]); },
      [](Point2 p, std::uint32_t s) { return make_point(p[1], s - 1 - p[0]); },
      [](Point2 p, std::uint32_t s) {
        return make_point(s - 1 - p[1], s - 1 - p[0]);
      },
  };
}

class HilbertLevel : public ::testing::TestWithParam<unsigned> {};

TEST_P(HilbertLevel, ConsecutiveIndicesAreLatticeNeighbors) {
  const unsigned level = GetParam();
  const HilbertCurve<2> curve;
  const std::uint64_t n = grid_size<2>(level);
  Point2 prev = curve.point(0, level);
  for (std::uint64_t i = 1; i < n; ++i) {
    const Point2 cur = curve.point(i, level);
    ASSERT_EQ(manhattan(prev, cur), 1u)
        << "discontinuity between index " << i - 1 << " and " << i;
    prev = cur;
  }
}

TEST_P(HilbertLevel, RecursiveReferenceIsAlsoContinuous) {
  const unsigned level = GetParam();
  const auto order = ref::hilbert2_order(level);
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_EQ(manhattan(order[i - 1], order[i]), 1u) << "at position " << i;
  }
}

TEST_P(HilbertLevel, RecursiveIndexMatchesRecursiveOrder) {
  const unsigned level = GetParam();
  const auto order = ref::hilbert2_order(level);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(ref::hilbert2_index(order[i], level), i);
  }
}

// Skilling's algorithm and the recursive construction may differ by a fixed
// symmetry of the square; find the symmetry at this level and verify it
// maps one curve onto the other pointwise.
TEST_P(HilbertLevel, SkillingMatchesRecursiveUpToSquareSymmetry) {
  const unsigned level = GetParam();
  if (level == 0) return;
  const HilbertCurve<2> fast;
  const std::uint32_t side = 1u << level;
  const std::uint64_t n = grid_size<2>(level);

  const auto maps = dihedral_maps();
  const auto order = ref::hilbert2_order(level);
  bool matched = false;
  for (const auto& map : maps) {
    bool all = true;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (map(fast.point(i, level), side) != order[i]) {
        all = false;
        break;
      }
    }
    if (all) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << "no dihedral symmetry maps Skilling onto the recursive curve";
}

INSTANTIATE_TEST_SUITE_P(Levels, HilbertLevel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(HilbertKnownValues, RecursiveOrderAtLevel2) {
  // The classic 16-point H2 path starting at the origin heading right.
  const std::vector<Point2> expected = {
      make_point(0, 0), make_point(1, 0), make_point(1, 1), make_point(0, 1),
      make_point(0, 2), make_point(0, 3), make_point(1, 3), make_point(1, 2),
      make_point(2, 2), make_point(2, 3), make_point(3, 3), make_point(3, 2),
      make_point(3, 1), make_point(2, 1), make_point(2, 0), make_point(3, 0)};
  EXPECT_EQ(ref::hilbert2_order(2), expected);
}

TEST(HilbertKnownValues, StartsAtOriginEveryLevel) {
  const HilbertCurve<2> curve;
  for (unsigned level = 0; level <= 10; ++level) {
    EXPECT_EQ(curve.index(make_point(0, 0), level), 0u) << "level " << level;
  }
}

TEST(HilbertKnownValues, Level1IsAQuadrantLoop) {
  // The four level-1 points must be visited in a connected loop order
  // (every valid Hilbert unit starts and ends on adjacent cells).
  const HilbertCurve<2> curve;
  const Point2 a = curve.point(0, 1);
  const Point2 d = curve.point(3, 1);
  EXPECT_EQ(manhattan(a, d), 1u);
}

TEST(HilbertEndpoints, CurveEndsAdjacentToStartRow) {
  // H_k enters at one bottom corner and exits at the other (in the
  // recursive reference orientation): verify entry (0,0), exit (2^k-1, 0).
  for (unsigned level = 1; level <= 6; ++level) {
    const auto order = ref::hilbert2_order(level);
    EXPECT_EQ(order.front(), make_point(0, 0));
    EXPECT_EQ(order.back(), make_point((1u << level) - 1, 0));
  }
}

TEST(HilbertLocality, QuadrantsAreContiguousIndexRanges) {
  // Recursive structure: every spatial quadrant occupies exactly one
  // contiguous quarter of the index range, and the four quadrants cover
  // the four quarters.
  const HilbertCurve<2> curve;
  constexpr unsigned kLevel = 5;
  const std::uint32_t side = 1u << kLevel;
  const std::uint64_t quarter = grid_size<2>(kLevel) / 4;
  std::array<std::uint64_t, 4> min_idx;
  std::array<std::uint64_t, 4> max_idx;
  min_idx.fill(~0ull);
  max_idx.fill(0);
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const std::size_t quad = (x >= side / 2 ? 1u : 0u) +
                               (y >= side / 2 ? 2u : 0u);
      const std::uint64_t idx = curve.index(make_point(x, y), kLevel);
      min_idx[quad] = std::min(min_idx[quad], idx);
      max_idx[quad] = std::max(max_idx[quad], idx);
    }
  }
  std::array<bool, 4> block_used{};
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(max_idx[q] - min_idx[q], quarter - 1) << "quadrant " << q;
    EXPECT_EQ(min_idx[q] % quarter, 0u) << "quadrant " << q;
    const std::size_t block = min_idx[q] / quarter;
    EXPECT_FALSE(block_used[block]);
    block_used[block] = true;
  }
}

}  // namespace
}  // namespace sfc
