// Differential properties of the topology layer: every closed-form
// distance function is checked pair-for-pair against a BFS oracle on an
// explicitly constructed edge list, the cached DistanceTable fill paths
// must agree with the virtual distance(), the metric axioms must hold on
// random rank triples, and RelabeledTopology must match its defining
// equation d'(a, b) = d(perm[a], perm[b]) under random permutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <random>
#include <stdexcept>
#include <vector>

#include "oracles/oracles.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "topology/dragonfly.hpp"
#include "topology/graph.hpp"
#include "topology/relabel.hpp"

namespace sfc::pbt {
namespace {

// ------------------------------------------------ closed form vs BFS

TEST(DistanceDiff, ClosedFormMatchesBfsOracle) {
  SFCACD_PBT_CHECK(
      topology_case(64), [](const TopoCase& c) -> std::optional<std::string> {
        const auto net = c.make();
        const topo::GraphTopology g = oracle::oracle_graph(c);
        if (net->size() != g.size()) return "size mismatch vs oracle graph";
        const topo::Rank p = net->size();
        const topo::DistanceTable& nt = net->dense_table();
        const topo::DistanceTable& gt = g.dense_table();
        std::uint64_t max_d = 0;
        for (topo::Rank a = 0; a < p; ++a) {
          for (topo::Rank b = 0; b < p; ++b) {
            const std::uint64_t want = g.distance(a, b);
            if (net->distance(a, b) != want) {
              return "closed form disagrees with BFS at (" +
                     std::to_string(a) + "," + std::to_string(b) + "): " +
                     std::to_string(net->distance(a, b)) + " vs " +
                     std::to_string(want);
            }
            if (nt(a, b) != want) return "table fill disagrees with BFS";
            if (gt(a, b) != want) return "graph table disagrees with BFS";
            max_d = std::max(max_d, want);
          }
        }
        if (net->diameter() != max_d) {
          return "diameter " + std::to_string(net->diameter()) +
                 " != max pair distance " + std::to_string(max_d);
        }
        return std::nullopt;
      });
}

// --------------------------------------------------------- metric axioms

/// A topology plus three ranks on it (possibly equal).
struct TopoTriple {
  TopoCase t;
  topo::Rank a = 0, b = 0, c = 0;
};

std::ostream& operator<<(std::ostream& os, const TopoTriple& v) {
  return os << "{" << detail::Printer<TopoCase>::print(v.t) << ", a=" << v.a
            << ", b=" << v.b << ", c=" << v.c << "}";
}

Gen<TopoTriple> topo_triple(topo::Rank max_procs) {
  const Gen<TopoCase> tc = topology_case(max_procs);
  return Gen<TopoTriple>{
      [tc](Rand& r) {
        TopoTriple v;
        v.t = tc.sample(r);
        v.a = static_cast<topo::Rank>(r.below(v.t.procs));
        v.b = static_cast<topo::Rank>(r.below(v.t.procs));
        v.c = static_cast<topo::Rank>(r.below(v.t.procs));
        return v;
      },
      [tc](const TopoTriple& v, std::vector<TopoTriple>& out) {
        for (const TopoCase& smaller : tc.shrinks(v.t)) {
          if (v.a < smaller.procs && v.b < smaller.procs &&
              v.c < smaller.procs) {
            out.push_back({smaller, v.a, v.b, v.c});
          }
        }
        for (int which = 0; which < 3; ++which) {
          const topo::Rank r =
              which == 0 ? v.a : (which == 1 ? v.b : v.c);
          std::vector<topo::Rank> cands;
          shrink_integral_toward<topo::Rank>(0, r, cands);
          for (const topo::Rank s : cands) {
            TopoTriple smaller = v;
            (which == 0 ? smaller.a : which == 1 ? smaller.b : smaller.c) = s;
            out.push_back(smaller);
          }
        }
      }};
}

TEST(DistanceDiff, DistanceIsAMetric) {
  SFCACD_PBT_CHECK(topo_triple(128), [](const TopoTriple& v)
                                         -> std::optional<std::string> {
    const auto net = v.t.make();
    if (net->distance(v.a, v.a) != 0) return "d(a,a) != 0";
    if (net->distance(v.a, v.b) != net->distance(v.b, v.a)) {
      return "d(a,b) != d(b,a)";
    }
    if (v.a != v.b && net->distance(v.a, v.b) == 0) {
      return "distinct ranks at distance 0";
    }
    if (net->distance(v.a, v.c) >
        net->distance(v.a, v.b) + net->distance(v.b, v.c)) {
      return "triangle inequality violated";
    }
    return std::nullopt;
  });
}

// --------------------------------------------------------------- dragonfly

topo::GraphTopology dragonfly_graph(const topo::DragonflyTopology& df) {
  const topo::Rank a = df.routers_per_group();
  const topo::Rank g = df.groups();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (topo::Rank s = 0; s < g; ++s) {
    for (topo::Rank i = 0; i < a; ++i) {
      for (topo::Rank j = i + 1; j < a; ++j) {
        edges.emplace_back(s * a + i, s * a + j);
      }
    }
  }
  for (topo::Rank s = 0; s < g; ++s) {
    for (topo::Rank d = s + 1; d < g; ++d) {
      edges.emplace_back(s * a + df.gateway(s, d), d * a + df.gateway(d, s));
    }
  }
  return topo::GraphTopology(df.size(), std::move(edges));
}

TEST(DistanceDiff, DragonflyClosedFormMatchesBfs) {
  SFCACD_PBT_CHECK(
      unsigned_in(1, 10), [](const unsigned a) -> std::optional<std::string> {
        const topo::DragonflyTopology df(a);
        const topo::GraphTopology g = dragonfly_graph(df);
        const topo::DistanceTable& dt = df.dense_table();
        std::uint64_t max_d = 0;
        for (topo::Rank x = 0; x < df.size(); ++x) {
          for (topo::Rank y = 0; y < df.size(); ++y) {
            const std::uint64_t want = g.distance(x, y);
            if (df.distance(x, y) != want) {
              return "closed form disagrees with BFS at (" +
                     std::to_string(x) + "," + std::to_string(y) + ")";
            }
            if (dt(x, y) != want) return "table fill disagrees with BFS";
            max_d = std::max(max_d, want);
          }
        }
        if (df.diameter() != max_d) return "diameter != max pair distance";
        return std::nullopt;
      });
}

// ------------------------------------------------------- relabeled views

/// A topology case plus a seed for a uniformly random rank permutation.
struct RelabelCase {
  TopoCase t;
  std::uint64_t perm_seed = 0;
};

std::ostream& operator<<(std::ostream& os, const RelabelCase& v) {
  return os << "{" << detail::Printer<TopoCase>::print(v.t)
            << ", perm_seed=" << v.perm_seed << "}";
}

std::vector<topo::Rank> make_perm(topo::Rank p, std::uint64_t seed) {
  std::vector<topo::Rank> perm(p);
  std::iota(perm.begin(), perm.end(), topo::Rank{0});
  std::mt19937_64 eng(seed);
  std::shuffle(perm.begin(), perm.end(), eng);
  return perm;
}

TEST(DistanceDiff, RelabeledViewMatchesItsDefinition) {
  const Gen<TopoCase> tc = topology_case(64);
  SFCACD_PBT_CHECK(
      (Gen<RelabelCase>{[tc](Rand& r) {
                          return RelabelCase{tc.sample(r), r.u64()};
                        },
                        [tc](const RelabelCase& v,
                             std::vector<RelabelCase>& out) {
                          for (const TopoCase& smaller : tc.shrinks(v.t)) {
                            out.push_back({smaller, v.perm_seed});
                          }
                          if (v.perm_seed != 0) out.push_back({v.t, 0});
                        }}),
      [](const RelabelCase& v) -> std::optional<std::string> {
        const auto base = v.t.make();
        const std::vector<topo::Rank> perm =
            make_perm(base->size(), v.perm_seed);
        const topo::RelabeledTopology view(*base, perm);
        if (view.size() != base->size()) return "size changed by relabel";
        if (view.diameter() != base->diameter()) {
          return "diameter changed by relabel";
        }
        const topo::DistanceTable& vt = view.dense_table();
        for (topo::Rank a = 0; a < view.size(); ++a) {
          for (topo::Rank b = 0; b < view.size(); ++b) {
            const std::uint64_t want = base->distance(perm[a], perm[b]);
            if (view.distance(a, b) != want) {
              return "view.distance != base.distance(perm[a], perm[b])";
            }
            if (vt(a, b) != want) {
              return "permuted table fill disagrees with definition";
            }
          }
        }
        return std::nullopt;
      });
}

TEST(DistanceDiff, RelabelRejectsNonPermutations) {
  const TopoCase c{topo::TopologyKind::kRing, 4, CurveKind::kHilbert};
  const auto net = c.make();
  EXPECT_THROW(topo::RelabeledTopology(*net, {0, 1, 2}),
               std::invalid_argument);  // wrong size
  EXPECT_THROW(topo::RelabeledTopology(*net, {0, 1, 2, 2}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(topo::RelabeledTopology(*net, {0, 1, 2, 4}),
               std::invalid_argument);  // out of range
  EXPECT_NO_THROW(topo::RelabeledTopology(*net, {3, 1, 0, 2}));
}

}  // namespace
}  // namespace sfc::pbt
