// Differential and metamorphic properties of the ACD engines. The
// optimized NFI/FFI paths (rank-pair aggregation, flat hop tables,
// owner-array enumeration, threaded ranges, sparse accumulators) are all
// pinned to the brute-force oracles in tests/oracles/, and the whole
// metric must be invariant under rank relabelings that are automorphisms
// of the interconnect — rotations/reflections of rings, XOR translations
// of hypercubes, shifts of tori — which exercises every layer at once
// with an answer known by symmetry instead of by reimplementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <tuple>
#include <vector>

#include "core/rank_pair.hpp"
#include "core/totals.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "fmm/occupancy.hpp"
#include "fmm/partition.hpp"
#include "oracles/oracles.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "topology/relabel.hpp"
#include "util/thread_pool.hpp"

namespace sfc::pbt {
namespace {

// ----------------------------------------------------------- case shape

/// One complete ACD instance: a particle set on a grid, the particle
/// order, the interconnect, and the near-field parameters.
struct AcdCase {
  unsigned level = 2;
  std::vector<Point2> pts;
  CurveKind curve = CurveKind::kHilbert;
  TopoCase topo;
  unsigned radius = 1;
  fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev;
};

std::ostream& operator<<(std::ostream& os, const AcdCase& c) {
  return os << "{level=" << c.level << ", n=" << c.pts.size() << ", curve="
            << curve_name(c.curve) << ", topo="
            << detail::Printer<TopoCase>::print(c.topo) << ", radius="
            << c.radius << ", norm="
            << (c.norm == fmm::NeighborNorm::kChebyshev ? "chebyshev"
                                                        : "manhattan")
            << ", pts=" << detail::Printer<std::vector<Point2>>::print(c.pts)
            << "}";
}

Gen<AcdCase> acd_case(topo::Rank max_procs) {
  const Gen<TopoCase> tc = topology_case(max_procs);
  const Gen<CurveKind> ck = any_curve2();
  return Gen<AcdCase>{
      [tc, ck](Rand& r) {
        AcdCase c;
        c.level = static_cast<unsigned>(r.between(2, 5));
        const std::uint64_t cells = grid_size<2>(c.level);
        const std::size_t max_n = static_cast<std::size_t>(
            std::min<std::uint64_t>(96, cells / 2));
        c.pts = distinct_points<2>(c.level, 1, max_n).sample(r);
        c.curve = ck.sample(r);
        c.topo = tc.sample(r);
        c.radius = static_cast<unsigned>(r.below(4));
        c.norm = r.coin() ? fmm::NeighborNorm::kChebyshev
                          : fmm::NeighborNorm::kManhattan;
        return c;
      },
      [tc, ck](const AcdCase& c, std::vector<AcdCase>& out) {
        // Particle-set shrinks keep the level fixed: shrinking the level
        // would re-scale the grid and invalidate the points.
        std::vector<std::vector<Point2>> pcands;
        distinct_points<2>(c.level, 1, c.pts.size())
            .shrink(c.pts, pcands);
        for (auto& pts : pcands) {
          AcdCase smaller = c;
          smaller.pts = std::move(pts);
          out.push_back(std::move(smaller));
        }
        for (const TopoCase& t : tc.shrinks(c.topo)) {
          AcdCase smaller = c;
          smaller.topo = t;
          out.push_back(std::move(smaller));
        }
        std::vector<unsigned> rads;
        shrink_integral_toward<unsigned>(0, c.radius, rads);
        for (const unsigned rr : rads) {
          AcdCase smaller = c;
          smaller.radius = rr;
          out.push_back(std::move(smaller));
        }
        for (const CurveKind k : ck.shrinks(c.curve)) {
          AcdCase smaller = c;
          smaller.curve = k;
          out.push_back(std::move(smaller));
        }
      }};
}

std::vector<Point2> sort_by_curve(std::vector<Point2> pts, CurveKind kind,
                                  unsigned level) {
  const auto curve = make_curve<2>(kind);
  std::sort(pts.begin(), pts.end(), [&](const Point2& a, const Point2& b) {
    return curve->index(a, level) < curve->index(b, level);
  });
  return pts;
}

util::ThreadPool& shared_pool() {
  static util::ThreadPool pool(4);
  return pool;
}

std::string show(const core::CommTotals& t) {
  return "{hops=" + std::to_string(t.hops) +
         ", count=" + std::to_string(t.count) + "}";
}

std::optional<std::string> expect_eq_totals(const core::CommTotals& got,
                                            const core::CommTotals& want,
                                            const char* what) {
  if (got == want) return std::nullopt;
  return std::string(what) + ": " + show(got) + " != oracle " + show(want);
}

// ------------------------------------------------------ NFI differential

TEST(AcdDiff, NfiEnginesMatchPairwiseOracle) {
  SFCACD_PBT_CHECK(acd_case(32), [](const AcdCase& c)
                                     -> std::optional<std::string> {
    const std::vector<Point2> sorted = sort_by_curve(c.pts, c.curve, c.level);
    const fmm::OccupancyGrid<2> grid(sorted, c.level);
    const fmm::Partition part(sorted.size(), c.topo.procs);
    const auto net = c.topo.make();
    const core::CommTotals want =
        oracle::nfi_pairwise<2>(sorted, part, *net, c.radius, c.norm);

    if (auto err = expect_eq_totals(
            fmm::nfi_totals<2>(sorted, grid, part, *net, c.radius, c.norm),
            want, "nfi_totals")) {
      return err;
    }
    if (auto err = expect_eq_totals(
            fmm::nfi_totals_direct<2>(sorted, grid, part, *net, c.radius,
                                      c.norm),
            want, "nfi_totals_direct")) {
      return err;
    }
    const core::RankPairAccumulator hist =
        fmm::nfi_histogram<2>(sorted, grid, part, c.radius, c.norm);
    return expect_eq_totals(net->fold(hist.view()), want,
                            "nfi_histogram + fold");
  });
}

TEST(AcdDiff, NfiThreadedMatchesSerialAndOracle) {
  SFCACD_PBT_CHECK_CFG(
      acd_case(32), CheckConfig{}.scaled(0.5),
      [](const AcdCase& c) -> std::optional<std::string> {
        const std::vector<Point2> sorted =
            sort_by_curve(c.pts, c.curve, c.level);
        const fmm::OccupancyGrid<2> grid(sorted, c.level);
        const fmm::Partition part(sorted.size(), c.topo.procs);
        const auto net = c.topo.make();
        const core::CommTotals want =
            oracle::nfi_pairwise<2>(sorted, part, *net, c.radius, c.norm);
        if (auto err = expect_eq_totals(
                fmm::nfi_totals<2>(sorted, grid, part, *net, c.radius, c.norm,
                                   &shared_pool()),
                want, "threaded nfi_totals")) {
          return err;
        }
        return expect_eq_totals(
            fmm::nfi_totals_direct<2>(sorted, grid, part, *net, c.radius,
                                      c.norm, &shared_pool()),
            want, "threaded nfi_totals_direct");
      });
}

using PairCount = std::tuple<topo::Rank, topo::Rank, std::uint64_t>;

TEST(AcdDiff, NfiOwnersPathMatchesPartitionPath) {
  // The owner-array path must produce the identical histogram for the
  // identical particle→owner assignment regardless of array order; feed
  // it the particles reversed with owners permuted to match.
  SFCACD_PBT_CHECK_CFG(
      acd_case(32), CheckConfig{}.scaled(0.5),
      [](const AcdCase& c) -> std::optional<std::string> {
        const std::vector<Point2> sorted =
            sort_by_curve(c.pts, c.curve, c.level);
        const std::size_t n = sorted.size();
        const fmm::OccupancyGrid<2> grid(sorted, c.level);
        const fmm::Partition part(n, c.topo.procs);
        const auto net = c.topo.make();

        std::vector<Point2> reversed(n);
        std::vector<topo::Rank> owners(n);
        for (std::size_t i = 0; i < n; ++i) {
          reversed[i] = sorted[n - 1 - i];
          owners[i] = part.proc_of(n - 1 - i);
        }
        const fmm::OccupancyGrid<2> rgrid(reversed, c.level);

        const core::RankPairAccumulator a =
            fmm::nfi_histogram<2>(sorted, grid, part, c.radius, c.norm);
        const core::RankPairAccumulator b = fmm::nfi_histogram_owners<2>(
            reversed, rgrid, owners, c.topo.procs, c.radius, c.norm);

        if (a.events() != b.events()) return "event totals differ";
        if (!(net->fold(a.view()) == net->fold(b.view()))) {
          return "folded totals differ";
        }
        std::vector<PairCount> sa;
        std::vector<PairCount> sb;
        a.for_each([&](topo::Rank s, topo::Rank d, std::uint64_t k) {
          sa.emplace_back(s, d, k);
        });
        b.for_each([&](topo::Rank s, topo::Rank d, std::uint64_t k) {
          sb.emplace_back(s, d, k);
        });
        if (sa != sb) return "per-pair histograms differ";
        return std::nullopt;
      });
}

TEST(AcdDiff, NfiSparseAccumulatorMatchesDense) {
  SFCACD_PBT_CHECK_CFG(
      acd_case(32), CheckConfig{}.scaled(0.5),
      [](const AcdCase& c) -> std::optional<std::string> {
        const std::vector<Point2> sorted =
            sort_by_curve(c.pts, c.curve, c.level);
        const fmm::OccupancyGrid<2> grid(sorted, c.level);
        const fmm::Partition part(sorted.size(), c.topo.procs);
        const auto net = c.topo.make();

        const core::RankPairAccumulator dense =
            fmm::nfi_histogram<2>(sorted, grid, part, c.radius, c.norm);
        core::RankPairAccumulator sparse(c.topo.procs, /*dense_budget=*/0);
        if (sparse.dense()) return "dense_budget=0 did not force sparse mode";
        dense.for_each([&](topo::Rank s, topo::Rank d, std::uint64_t k) {
          sparse.add(s, d, k);
        });
        sparse.seal();
        if (sparse.events() != dense.events()) return "event totals differ";
        if (!(net->fold(sparse.view()) == net->fold(dense.view()))) {
          return "sparse fold != dense fold";
        }
        return std::nullopt;
      });
}

// ------------------------------------------------------ FFI differential

TEST(AcdDiff, FfiEnginesMatchDefinitionalOracle) {
  SFCACD_PBT_CHECK(acd_case(32), [](const AcdCase& c)
                                     -> std::optional<std::string> {
    const std::vector<Point2> sorted = sort_by_curve(c.pts, c.curve, c.level);
    const fmm::Partition part(sorted.size(), c.topo.procs);
    const auto net = c.topo.make();
    const fmm::CellTree<2> tree(sorted, c.level);
    const fmm::FfiTotals want =
        oracle::ffi_definitional<2>(sorted, c.level, part, *net);

    const auto check_family =
        [&want](const char* name,
                const fmm::FfiTotals& got) -> std::optional<std::string> {
      if (auto err = expect_eq_totals(got.interpolation, want.interpolation,
                                      name)) {
        return "interpolation " + *err;
      }
      if (auto err = expect_eq_totals(got.anterpolation, want.anterpolation,
                                      name)) {
        return "anterpolation " + *err;
      }
      if (auto err =
              expect_eq_totals(got.interaction, want.interaction, name)) {
        return "interaction " + *err;
      }
      return std::nullopt;
    };
    if (auto err = check_family("ffi_totals",
                                fmm::ffi_totals<2>(tree, part, *net))) {
      return err;
    }
    if (auto err = check_family("ffi_totals_direct",
                                fmm::ffi_totals_direct<2>(tree, part, *net))) {
      return err;
    }
    return check_family("ffi_histograms + ffi_fold",
                        fmm::ffi_fold(fmm::ffi_histograms<2>(tree, part),
                                      *net));
  });
}

TEST(AcdDiff, FfiThreadedMatchesSerial) {
  SFCACD_PBT_CHECK_CFG(
      acd_case(32), CheckConfig{}.scaled(0.5),
      [](const AcdCase& c) -> std::optional<std::string> {
        const std::vector<Point2> sorted =
            sort_by_curve(c.pts, c.curve, c.level);
        const fmm::Partition part(sorted.size(), c.topo.procs);
        const auto net = c.topo.make();
        const fmm::CellTree<2> tree(sorted, c.level);
        const fmm::FfiTotals serial = fmm::ffi_totals<2>(tree, part, *net);
        const fmm::FfiTotals threaded =
            fmm::ffi_totals<2>(tree, part, *net, &shared_pool());
        if (!(serial.interpolation == threaded.interpolation &&
              serial.anterpolation == threaded.anterpolation &&
              serial.interaction == threaded.interaction)) {
          return "threaded FFI differs from serial";
        }
        return std::nullopt;
      });
}

// ------------------------------------------- automorphism invariance

/// Rank permutations that are graph automorphisms of the case's
/// interconnect; every ACD total must be bit-identical under them.
std::vector<std::vector<topo::Rank>> automorphisms(const TopoCase& t) {
  const topo::Rank p = t.procs;
  std::vector<std::vector<topo::Rank>> perms;
  auto from_fn = [p](auto&& fn) {
    std::vector<topo::Rank> perm(p);
    for (topo::Rank r = 0; r < p; ++r) perm[r] = fn(r);
    return perm;
  };
  switch (t.kind) {
    case topo::TopologyKind::kBus:
      perms.push_back(from_fn([p](topo::Rank r) { return p - 1 - r; }));
      break;
    case topo::TopologyKind::kRing:
      perms.push_back(from_fn([p](topo::Rank r) { return (r + 1) % p; }));
      perms.push_back(
          from_fn([p](topo::Rank r) { return (r + p / 2) % p; }));
      perms.push_back(from_fn([p](topo::Rank r) { return (p - r) % p; }));
      break;
    case topo::TopologyKind::kHypercube:
      if (p > 1) {
        perms.push_back(from_fn([](topo::Rank r) { return r ^ 1u; }));
        perms.push_back(from_fn([p](topo::Rank r) { return r ^ (p - 1); }));
      }
      break;
    case topo::TopologyKind::kMesh:
    case topo::TopologyKind::kTorus: {
      if (p == 1) break;
      unsigned m = 0;
      while ((topo::Rank{1} << (2 * m)) < p) ++m;
      const std::uint32_t side = 1u << m;
      const auto curve = make_curve<2>(t.ranking);
      // Point reflection through the grid center (mesh and torus).
      perms.push_back(from_fn([&](topo::Rank r) {
        const Point2 c = curve->point(r, m);
        return static_cast<topo::Rank>(curve->index(
            make_point(side - 1 - c[0], side - 1 - c[1]), m));
      }));
      if (t.kind == topo::TopologyKind::kTorus) {
        // Wraparound translations (torus only).
        const std::pair<std::uint32_t, std::uint32_t> shifts[] = {{1, 0},
                                                                  {1, 1}};
        for (const auto& [tx, ty] : shifts) {
          perms.push_back(from_fn([&, tx = tx, ty = ty](topo::Rank r) {
            const Point2 c = curve->point(r, m);
            return static_cast<topo::Rank>(curve->index(
                make_point((c[0] + tx) % side, (c[1] + ty) % side), m));
          }));
        }
      }
      break;
    }
    case topo::TopologyKind::kQuadtree:
      // Sibling leaves are interchangeable: swap the first two.
      if (p >= 4) {
        perms.push_back(from_fn(
            [](topo::Rank r) { return r < 2 ? topo::Rank{1} - r : r; }));
      }
      break;
  }
  return perms;
}

TEST(AcdDiff, AutomorphicRelabelingLeavesAcdInvariant) {
  SFCACD_PBT_CHECK_CFG(
      acd_case(64), CheckConfig{}.scaled(0.5),
      [](const AcdCase& c) -> std::optional<std::string> {
        const std::vector<Point2> sorted =
            sort_by_curve(c.pts, c.curve, c.level);
        const fmm::OccupancyGrid<2> grid(sorted, c.level);
        const fmm::Partition part(sorted.size(), c.topo.procs);
        const auto net = c.topo.make();
        const fmm::CellTree<2> tree(sorted, c.level);
        const std::vector<topo::Rank> owners = part.owner_table();

        const core::CommTotals nfi_base =
            net->fold(fmm::nfi_histogram_owners<2>(sorted, grid, owners,
                                                 c.topo.procs, c.radius,
                                                 c.norm)
                          .view());
        const fmm::FfiTotals ffi_base = fmm::ffi_totals<2>(tree, part, *net);

        for (const std::vector<topo::Rank>& perm : automorphisms(c.topo)) {
          // Sanity: the permutation really is distance-preserving; a bad
          // entry here would indict the test, not the engines.
          for (topo::Rank a = 0; a < c.topo.procs; ++a) {
            for (topo::Rank b = 0; b < c.topo.procs; ++b) {
              if (net->distance(perm[a], perm[b]) != net->distance(a, b)) {
                return "test bug: permutation is not an automorphism";
              }
            }
          }
          std::vector<topo::Rank> owners2(owners.size());
          for (std::size_t i = 0; i < owners.size(); ++i) {
            owners2[i] = perm[owners[i]];
          }
          const core::CommTotals nfi_perm =
              net->fold(fmm::nfi_histogram_owners<2>(sorted, grid, owners2,
                                                   c.topo.procs, c.radius,
                                                   c.norm)
                            .view());
          if (!(nfi_perm == nfi_base)) {
            return "NFI changed under automorphic relabeling: " +
                   show(nfi_perm) + " != " + show(nfi_base);
          }
          const topo::RelabeledTopology view(*net, perm);
          const fmm::FfiTotals ffi_perm =
              fmm::ffi_totals<2>(tree, part, view);
          if (!(ffi_perm.interpolation == ffi_base.interpolation &&
                ffi_perm.anterpolation == ffi_base.anterpolation &&
                ffi_perm.interaction == ffi_base.interaction)) {
            return "FFI changed under automorphic relabeling";
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace sfc::pbt
