// Golden test for the span tracer's Chrome trace-event export: spans
// recorded on two threads must serialize to well-formed trace events with
// per-thread monotonic timestamps and balanced, name-matched B/E pairs.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sfc::obs {
namespace {

struct ParsedEvent {
  char phase = 0;  // 'B' or 'E'
  std::string name;
  unsigned tid = 0;
  double ts_us = 0.0;
};

/// If `json` holds `prefix` at `pos`, advance past it and return the
/// run of characters up to (not including) `stop`; nullopt otherwise.
std::optional<std::string> take_field(const std::string& json,
                                      std::size_t& pos,
                                      const std::string& prefix, char stop) {
  if (json.compare(pos, prefix.size(), prefix) != 0) return std::nullopt;
  pos += prefix.size();
  const std::size_t end = json.find(stop, pos);
  if (end == std::string::npos) return std::nullopt;
  std::string value = json.substr(pos, end - pos);
  pos = end + 1;
  return value;
}

/// Extract the B/E events from an exported trace. The exporter emits a
/// fixed key order, so a linear scan over the literal key sequence
/// matches every span event (metadata "M" events are intentionally not
/// matched). Hand-rolled: <regex> trips a GCC -Wmaybe-uninitialized
/// false positive in libstdc++ under the sanitizer builds (GCC PR
/// 105562) and -Werror is on everywhere.
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> events;
  for (std::size_t at = json.find("{\"ph\":\""); at != std::string::npos;
       at = json.find("{\"ph\":\"", at + 1)) {
    std::size_t pos = at;
    const auto phase = take_field(json, pos, "{\"ph\":\"", '"');
    if (!phase || (*phase != "B" && *phase != "E")) continue;
    const auto name = take_field(json, pos, ",\"name\":\"", '"');
    if (!name) continue;
    if (json.compare(pos, 13, ",\"cat\":\"sfc\",") != 0) continue;
    pos += 13;
    const auto tid = take_field(json, pos, "\"pid\":1,\"tid\":", ',');
    if (!tid) continue;
    const auto ts = take_field(json, pos, "\"ts\":", '}');
    if (!ts || ts->find('.') == std::string::npos) continue;
    ParsedEvent e;
    e.phase = (*phase)[0];
    e.name = *name;
    e.tid = static_cast<unsigned>(std::stoul(*tid));
    e.ts_us = std::stod(*ts);
    events.push_back(e);
  }
  return events;
}

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kTracingCompiledIn) {
      GTEST_SKIP() << "built with SFC_OBS_DISABLE: spans compile to no-ops";
    }
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceExportTest, TwoThreadExportIsBalancedAndMonotonic) {
  constexpr int kSpansPerThread = 50;
  auto record = [] {
    for (int i = 0; i < kSpansPerThread; ++i) {
      const Span outer("test/outer");
      const Span inner("test/inner");
    }
  };
  std::thread a(record);
  std::thread b(record);
  a.join();
  b.join();

  std::ostringstream os;
  Tracer::instance().export_chrome_trace(os);
  const std::string json = os.str();

  // Structural sanity: one JSON object with a traceEvents array.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);

  const std::vector<ParsedEvent> events = parse_events(json);
  // 2 threads x kSpansPerThread x 2 spans x (B + E).
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(2 * kSpansPerThread * 2 * 2));

  // Per thread: timestamps monotonic in emission order, and B/E events
  // balance like a well-formed bracket sequence with matching names.
  std::map<unsigned, double> last_ts;
  std::map<unsigned, std::vector<std::string>> stack;
  for (const ParsedEvent& e : events) {
    EXPECT_TRUE(e.phase == 'B' || e.phase == 'E');
    auto [it, inserted] = last_ts.try_emplace(e.tid, e.ts_us);
    if (!inserted) {
      EXPECT_GE(e.ts_us, it->second) << "tid " << e.tid;
      it->second = e.ts_us;
    }
    auto& open = stack[e.tid];
    if (e.phase == 'B') {
      open.push_back(e.name);
    } else {
      ASSERT_FALSE(open.empty()) << "E without B on tid " << e.tid;
      EXPECT_EQ(open.back(), e.name);
      open.pop_back();
    }
  }
  EXPECT_EQ(stack.size(), 2u) << "expected spans from exactly 2 threads";
  for (const auto& [tid, open] : stack) {
    EXPECT_TRUE(open.empty()) << "unclosed span on tid " << tid;
  }
}

TEST_F(TraceExportTest, ThreadNamesAppearAsMetadata) {
  Tracer::instance().set_thread_name("golden-main");
  { const Span span("test/named"); }
  std::ostringstream os;
  Tracer::instance().export_chrome_trace(os);
  EXPECT_NE(os.str().find("\"thread_name\""), std::string::npos);
  EXPECT_NE(os.str().find("\"golden-main\""), std::string::npos);
}

TEST_F(TraceExportTest, DisabledTracerRecordsNothing) {
  Tracer::instance().set_enabled(false);
  const std::size_t before = Tracer::instance().event_count();
  {
    const Span span("test/ignored");
  }
  EXPECT_EQ(Tracer::instance().event_count(), before);
}

TEST_F(TraceExportTest, SpanOpenAcrossDisableStillCloses) {
  const std::size_t before = Tracer::instance().event_count();
  {
    const Span span("test/straddle");
    Tracer::instance().set_enabled(false);
  }
  // B at entry, E at exit despite the disable — exports stay balanced.
  EXPECT_EQ(Tracer::instance().event_count(), before + 2);
}

TEST(TraceClockTest, NowNsIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace sfc::obs
