// Study-runner coverage for the extended registries: every implemented
// curve and distribution must flow through the runners, and invalid
// configurations must fail loudly rather than silently.
#include <gtest/gtest.h>

#include "core/study.hpp"

namespace sfc::core {
namespace {

TEST(ExtendedStudy, AllSevenCurvesThroughCombinationStudy) {
  CombinationStudyConfig cfg;
  cfg.particles = 800;
  cfg.level = 6;
  cfg.procs = 64;
  cfg.seed = 5;
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.curves.assign(std::begin(kAllCurves), std::end(kAllCurves));
  const auto result = run_combination_study(cfg);
  ASSERT_EQ(result.cells[0].size(), 7u);
  ASSERT_EQ(result.cells[0][0].size(), 7u);
  for (const auto& row : result.cells[0]) {
    for (const auto& cell : row) {
      EXPECT_GT(cell.nfi_acd + cell.ffi_acd, 0.0);
    }
  }
}

TEST(ExtendedStudy, MooreTracksHilbertClosely) {
  CombinationStudyConfig cfg;
  cfg.particles = 2000;
  cfg.level = 7;
  cfg.procs = 256;
  cfg.seed = 6;
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.curves = {CurveKind::kHilbert, CurveKind::kMoore,
                CurveKind::kRowMajor};
  const auto result = run_combination_study(cfg);
  const double hh = result.cells[0][0][0].nfi_acd;
  const double mm = result.cells[0][1][1].nfi_acd;
  const double rr = result.cells[0][2][2].nfi_acd;
  EXPECT_LT(std::abs(hh - mm), 0.35 * hh);  // the loop ~ the open curve
  EXPECT_GT(rr, 2.0 * std::max(hh, mm));
}

TEST(ExtendedStudy, ExtendedDistributionsThroughCombinationStudy) {
  CombinationStudyConfig cfg;
  cfg.particles = 600;
  cfg.level = 6;
  cfg.procs = 64;
  cfg.seed = 7;
  cfg.distributions.assign(std::begin(dist::kExtendedDistributions),
                           std::end(dist::kExtendedDistributions));
  cfg.curves = {CurveKind::kHilbert};
  const auto result = run_combination_study(cfg);
  const std::size_t dists = std::size(dist::kExtendedDistributions);
  ASSERT_EQ(result.cells.size(), dists);
  for (std::size_t d = 0; d < dists; ++d) {
    EXPECT_GT(result.cells[d][0][0].nfi_acd + result.cells[d][0][0].ffi_acd,
              0.0)
        << dist_name(cfg.distributions[d]);
  }
}

TEST(ExtendedStudy, InvalidTorusSizeThrows) {
  ScalingStudyConfig cfg;
  cfg.particles = 200;
  cfg.level = 5;
  cfg.proc_counts = {48};  // not a square power of two
  cfg.curves = {CurveKind::kHilbert};
  EXPECT_THROW(run_scaling_study(cfg), std::invalid_argument);
}

TEST(ExtendedStudy, AnnsStudyWithLargerRadiusAndAllCurves) {
  AnnsStudyConfig cfg;
  cfg.levels = {3, 4};
  cfg.radius = 4;
  cfg.curves.assign(std::begin(kAllCurves), std::end(kAllCurves));
  const auto result = run_anns_study(cfg);
  ASSERT_EQ(result.stats.size(), 7u);
  for (const auto& per_curve : result.stats) {
    for (const auto& s : per_curve) {
      EXPECT_GT(s.average, 0.0);
      EXPECT_GT(s.pairs, 0u);
    }
  }
}

TEST(ExtendedStudy, NfiOnlyAndFfiOnlyModesSkipTheOther) {
  CombinationStudyConfig cfg;
  cfg.particles = 400;
  cfg.level = 5;
  cfg.procs = 16;
  cfg.seed = 8;
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.curves = {CurveKind::kMorton};
  cfg.far_field = false;
  const auto nfi_only = run_combination_study(cfg);
  EXPECT_GT(nfi_only.cells[0][0][0].nfi_acd, 0.0);
  EXPECT_EQ(nfi_only.cells[0][0][0].ffi_acd, 0.0);
  cfg.far_field = true;
  cfg.near_field = false;
  const auto ffi_only = run_combination_study(cfg);
  EXPECT_EQ(ffi_only.cells[0][0][0].nfi_acd, 0.0);
  EXPECT_GT(ffi_only.cells[0][0][0].ffi_acd, 0.0);
}

TEST(ExtendedStudy, WeightedPartitionSameCommunicationsDifferentHops) {
  // The communication *set* depends only on the particles; the partition
  // moves the endpoints. A deliberately lopsided weighting must keep the
  // count and change the hops.
  dist::SampleConfig sample;
  sample.count = 1500;
  sample.level = 7;
  sample.seed = 9;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const AcdInstance<2> instance(particles, 7, *curve);
  const auto net =
      topo::make_topology<2>(topo::TopologyKind::kTorus, 64, curve.get());

  const fmm::Partition equal(instance.particles().size(), 64);
  std::vector<double> lopsided(instance.particles().size(), 1.0);
  for (std::size_t i = 0; i < lopsided.size() / 4; ++i) lopsided[i] = 50.0;
  const auto weighted = fmm::Partition::weighted(lopsided, 64);

  const auto a = instance.nfi(equal, *net, 1);
  const auto b = instance.nfi(weighted, *net, 1);
  EXPECT_EQ(a.count, b.count);
  EXPECT_NE(a.hops, b.hops);
}

}  // namespace
}  // namespace sfc::core
