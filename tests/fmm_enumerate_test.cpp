// Visitor/reducer consistency: nfi_visit and ffi_visit must enumerate
// exactly the communications nfi_totals and ffi_totals count.
#include "fmm/enumerate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/linear.hpp"

namespace sfc::fmm {
namespace {

std::vector<Point2> pseudo_particles(std::size_t n, unsigned level) {
  std::vector<Point2> particles;
  const std::uint32_t side = 1u << level;
  for (std::uint32_t i = 0; i < n; ++i) {
    particles.push_back(
        make_point((i * 37 + 5) % side, (i * 101 + i / 7) % side));
  }
  std::sort(particles.begin(), particles.end(),
            [level](const Point2& a, const Point2& b) {
              return pack(a, level) < pack(b, level);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  return particles;
}

TEST(NfiVisit, MatchesNfiTotals) {
  const auto particles = pseudo_particles(800, 6);
  const OccupancyGrid<2> grid(particles, 6);
  const Partition part(particles.size(), 16);
  const topo::BusTopology bus(16);

  for (const NeighborNorm norm :
       {NeighborNorm::kChebyshev, NeighborNorm::kManhattan}) {
    for (const unsigned radius : {1u, 2u, 4u}) {
      core::CommTotals visited;
      nfi_visit<2>(particles, grid, radius, norm,
                   [&](std::size_t i, std::size_t j) {
                     visited.hops += bus.distance(part.proc_of(i),
                                                  part.proc_of(j));
                     ++visited.count;
                   });
      const auto reduced =
          nfi_totals<2>(particles, grid, part, bus, radius, norm);
      EXPECT_EQ(visited, reduced) << "radius " << radius;
    }
  }
}

TEST(NfiVisit, PairsAreSymmetric) {
  // (i, j) visited <=> (j, i) visited: the neighborhood relation is
  // symmetric for both norms.
  const auto particles = pseudo_particles(400, 5);
  const OccupancyGrid<2> grid(particles, 5);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  nfi_visit<2>(particles, grid, 2, NeighborNorm::kChebyshev,
               [&](std::size_t i, std::size_t j) { pairs.emplace_back(i, j); });
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [i, j] : pairs) {
    ASSERT_TRUE(std::binary_search(pairs.begin(), pairs.end(),
                                   std::make_pair(j, i)))
        << i << " <- " << j;
  }
}

TEST(FfiVisit, MatchesFfiTotals) {
  const auto particles = pseudo_particles(1200, 6);
  const CellTree<2> tree(particles, 6);
  const Partition part(particles.size(), 32);
  const topo::RingTopology ring(32);

  FfiTotals visited;
  ffi_visit<2>(tree, [&](std::uint32_t from, std::uint32_t to,
                         FfiComponent component) {
    const auto d = ring.distance(part.proc_of(from), part.proc_of(to));
    switch (component) {
      case FfiComponent::kInterpolation:
        visited.interpolation.hops += d;
        ++visited.interpolation.count;
        break;
      case FfiComponent::kAnterpolation:
        visited.anterpolation.hops += d;
        ++visited.anterpolation.count;
        break;
      case FfiComponent::kInteraction:
        visited.interaction.hops += d;
        ++visited.interaction.count;
        break;
    }
  });
  const auto reduced = ffi_totals<2>(tree, part, ring);
  EXPECT_EQ(visited.interpolation, reduced.interpolation);
  EXPECT_EQ(visited.anterpolation, reduced.anterpolation);
  EXPECT_EQ(visited.interaction, reduced.interaction);
}

TEST(FfiVisit, AnterpolationMirrorsInterpolation) {
  const auto particles = pseudo_particles(300, 5);
  const CellTree<2> tree(particles, 5);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> interp, anterp;
  ffi_visit<2>(tree, [&](std::uint32_t from, std::uint32_t to,
                         FfiComponent component) {
    if (component == FfiComponent::kInterpolation) {
      interp.emplace_back(from, to);
    } else if (component == FfiComponent::kAnterpolation) {
      anterp.emplace_back(to, from);  // reversed must equal interp
    }
  });
  EXPECT_EQ(interp, anterp);
}

TEST(NfiVisit, ThreeDMatchesTotals) {
  std::vector<Point3> particles;
  for (std::uint32_t i = 0; i < 200; ++i) {
    particles.push_back(
        make_point(i % 16, (i * 7) % 16, (i * 3 + 1) % 16));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point3& a, const Point3& b) {
              return pack(a, 4) < pack(b, 4);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  const OccupancyGrid<3> grid(particles, 4);
  const Partition part(particles.size(), 8);
  const topo::BusTopology bus(8);

  core::CommTotals visited;
  nfi_visit<3>(particles, grid, 1, NeighborNorm::kChebyshev,
               [&](std::size_t i, std::size_t j) {
                 visited.hops +=
                     bus.distance(part.proc_of(i), part.proc_of(j));
                 ++visited.count;
               });
  const auto reduced = nfi_totals<3>(particles, grid, part, bus, 1,
                                     NeighborNorm::kChebyshev);
  EXPECT_EQ(visited, reduced);
}

}  // namespace
}  // namespace sfc::fmm
