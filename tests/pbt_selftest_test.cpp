// Self-tests of the property-based testing core: the runner must detect
// failures, shrink them to canonical minimal counterexamples, replay
// deterministically from (master seed, iteration), honor the environment
// budget knobs, and keep the domain generators' invariants through
// shrinking. The capstone is the injected-bug test: a deliberately
// corrupted DistanceTable must be caught by the differential property
// and shrunk to the smallest ring that exposes the off-by-one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "topology/distance_table.hpp"
#include "topology/factory.hpp"

namespace sfc::pbt {
namespace {

// ----------------------------------------------------------- runner basics

TEST(PbtRunner, PassingPropertyRunsEveryIteration) {
  const CheckConfig cfg{.iterations = 123, .seed = 1};
  const CheckOutcome out =
      check(u64_in(0, 100), [](std::uint64_t v) { return v <= 100; }, cfg);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.iterations_run, 123u);
  EXPECT_TRUE(out.message.empty());
  EXPECT_EQ(out.master_seed, 1u);
}

TEST(PbtRunner, IntegerCounterexampleShrinksToThreshold) {
  // The property fails for v >= 1234; greedy shrinking must land exactly
  // on the boundary (halving overshoots are rejected, decrements finish).
  const CheckConfig cfg{.iterations = 200, .seed = 7};
  const CheckOutcome out =
      check(u64_in(0, 10000), [](std::uint64_t v) { return v < 1234; }, cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.counterexample, "1234");
  EXPECT_GT(out.shrink_improvements, 0u);
  EXPECT_NE(out.message.find("SFCACD_PBT_SEED=0x7"), std::string::npos)
      << out.message;
}

TEST(PbtRunner, VectorCounterexampleShrinksToMinimalSizeAndContent) {
  const CheckConfig cfg{.iterations = 200, .seed = 3};
  const CheckOutcome out = check(
      vector_of(u64_in(0, 100), 0, 30),
      [](const std::vector<std::uint64_t>& v) { return v.size() < 5; }, cfg);
  ASSERT_FALSE(out.ok);
  // Minimal failing vector: exactly 5 elements, each shrunk to 0.
  EXPECT_EQ(out.counterexample, "[5 elems: 0 0 0 0 0]");
}

TEST(PbtRunner, ElementOfShrinksTowardEarlierOptions) {
  const CheckConfig cfg{.iterations = 100, .seed = 5};
  const CheckOutcome out = check(
      element_of(std::vector<int>{10, 20, 30}),
      [](int v) { return v < 15; }, cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.counterexample, "20");  // 30 shrinks to the earliest failure
}

TEST(PbtRunner, ReplayIsDeterministic) {
  const CheckConfig cfg{.iterations = 500, .seed = 99};
  const auto prop = [](std::uint64_t v) { return v < 990; };
  const CheckOutcome a = check(u64_in(0, 1000), prop, cfg);
  const CheckOutcome b = check(u64_in(0, 1000), prop, cfg);
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failing_iteration, b.failing_iteration);
  EXPECT_EQ(a.failing_case_seed, b.failing_case_seed);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.message, b.message);
}

TEST(PbtRunner, ExceptionInPropertyIsAFailureAndShrinks) {
  const CheckConfig cfg{.iterations = 200, .seed = 11};
  const CheckOutcome out = check(
      u64_in(0, 1000),
      [](std::uint64_t v) -> bool {
        if (v >= 500) throw std::runtime_error("boom");
        return true;
      },
      cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.counterexample, "500");
  EXPECT_NE(out.message.find("property threw: boom"), std::string::npos)
      << out.message;
}

TEST(PbtRunner, OptionalStringPropertyCarriesDetail) {
  const CheckConfig cfg{.iterations = 50, .seed = 2};
  const CheckOutcome out = check(
      u64_in(900, 1000),
      [](std::uint64_t v) -> std::optional<std::string> {
        return "got " + std::to_string(v);
      },
      cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.message.find("got 900"), std::string::npos) << out.message;
}

// --------------------------------------------------------- environment knobs

/// Scoped environment override that restores the previous value.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (old_) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(PbtConfig, EnvIterationsOverrideDefault) {
  const EnvVarGuard guard("SFCACD_PBT_ITERS", "17");
  EXPECT_EQ(CheckConfig{}.resolved().iterations, 17u);
}

TEST(PbtConfig, MalformedEnvIterationsFallBackToDefault) {
  const EnvVarGuard guard("SFCACD_PBT_ITERS", "bogus");
  EXPECT_EQ(CheckConfig{}.resolved().iterations, kDefaultIterations);
}

TEST(PbtConfig, EnvSeedParsesHexAndDecimal) {
  {
    const EnvVarGuard guard("SFCACD_PBT_SEED", "0x2a");
    EXPECT_EQ(CheckConfig{}.resolved().seed, 0x2au);
  }
  {
    const EnvVarGuard guard("SFCACD_PBT_SEED", "42");
    EXPECT_EQ(CheckConfig{}.resolved().seed, 42u);
  }
  {
    const EnvVarGuard guard("SFCACD_PBT_SEED", nullptr);
    EXPECT_EQ(CheckConfig{}.resolved().seed, kDefaultSeed);
  }
}

TEST(PbtConfig, ExplicitConfigBeatsEnvironment) {
  const EnvVarGuard iters("SFCACD_PBT_ITERS", "17");
  const EnvVarGuard seed("SFCACD_PBT_SEED", "0x2a");
  const CheckConfig cfg{.iterations = 5, .seed = 9};
  EXPECT_EQ(cfg.resolved().iterations, 5u);
  EXPECT_EQ(cfg.resolved().seed, 9u);
}

TEST(PbtConfig, ScaledAppliesFactorWithFloorOfOne) {
  EXPECT_EQ((CheckConfig{.iterations = 100, .seed = 1}).scaled(0.25).iterations,
            25u);
  EXPECT_EQ((CheckConfig{.iterations = 10, .seed = 1}).scaled(0.001).iterations,
            1u);
}

// ------------------------------------------------------- domain generators

TEST(PbtDomain, DistinctPointsHoldInvariantUnderSamplingAndShrinking) {
  const unsigned level = 3;
  const Gen<std::vector<Point2>> gen = distinct_points<2>(level, 1, 16);
  Rand rand(2024);
  for (int i = 0; i < 200; ++i) {
    const std::vector<Point2> pts = gen.sample(rand);
    ASSERT_GE(pts.size(), 1u);
    ASSERT_LE(pts.size(), 16u);
    std::set<std::uint64_t> keys;
    for (const Point2& p : pts) {
      ASSERT_TRUE(in_grid(p, level)) << to_string(p);
      ASSERT_TRUE(keys.insert(pack(p, level)).second)
          << "duplicate cell " << to_string(p);
    }
    // Every shrink candidate must preserve the distinct-cell invariant.
    for (const std::vector<Point2>& cand : gen.shrinks(pts)) {
      ASSERT_GE(cand.size(), 1u);
      std::set<std::uint64_t> ck;
      for (const Point2& p : cand) {
        ASSERT_TRUE(in_grid(p, level));
        ASSERT_TRUE(ck.insert(pack(p, level)).second);
      }
    }
  }
}

TEST(PbtDomain, TopologyCasesAreAlwaysConstructible) {
  SFCACD_PBT_CHECK(topology_case(64), [](const TopoCase& t) {
    const auto net = t.make();
    return net != nullptr && net->size() == t.procs && net->kind() == t.kind;
  });
}

TEST(PbtDomain, TopologyCaseShrinksStayValid) {
  const Gen<TopoCase> gen = topology_case(64);
  Rand rand(55);
  for (int i = 0; i < 200; ++i) {
    const TopoCase t = gen.sample(rand);
    for (const TopoCase& cand : gen.shrinks(t)) {
      const auto net = cand.make();  // throws on an invalid (kind, procs)
      ASSERT_EQ(net->size(), cand.procs);
    }
  }
}

// -------------------------------------------- the injected-bug acceptance test

/// A ring of size p plus one ordered rank pair on it.
struct RingPair {
  topo::Rank p = 1;
  topo::Rank a = 0;
  topo::Rank b = 0;
};

std::ostream& operator<<(std::ostream& os, const RingPair& c) {
  return os << "{p=" << c.p << ", a=" << c.a << ", b=" << c.b << "}";
}

Gen<RingPair> ring_pair(topo::Rank max_p) {
  return Gen<RingPair>{
      [max_p](Rand& r) {
        RingPair c;
        c.p = static_cast<topo::Rank>(r.between(1, max_p));
        c.a = static_cast<topo::Rank>(r.below(c.p));
        c.b = static_cast<topo::Rank>(r.below(c.p));
        return c;
      },
      [](const RingPair& c, std::vector<RingPair>& out) {
        std::vector<topo::Rank> cands;
        shrink_integral_toward<topo::Rank>(1, c.p, cands);
        for (const topo::Rank p : cands) {
          if (c.a < p && c.b < p) out.push_back({p, c.a, c.b});
        }
        cands.clear();
        shrink_integral_toward<topo::Rank>(0, c.a, cands);
        for (const topo::Rank a : cands) out.push_back({c.p, a, c.b});
        cands.clear();
        shrink_integral_toward<topo::Rank>(0, c.b, cands);
        for (const topo::Rank b : cands) out.push_back({c.p, c.a, b});
      }};
}

/// The differential property every table must satisfy: table(a, b) equals
/// the topology's closed-form distance. `bug_below_diagonal` injects an
/// off-by-one into the lower triangle, modeling a transposed/asymmetric
/// fill — exactly the class of mistake a closed-form one-pass fill can make.
std::optional<std::string> ring_table_matches(const RingPair& c,
                                              bool bug_below_diagonal) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net =
      topo::make_topology<2>(topo::TopologyKind::kRing, c.p, curve.get());
  topo::DistanceTable table(c.p);
  for (topo::Rank x = 0; x < c.p; ++x) {
    for (topo::Rank y = 0; y < c.p; ++y) {
      table.at(x, y) = static_cast<std::uint32_t>(net->distance(x, y)) +
                       ((bug_below_diagonal && x > y) ? 1u : 0u);
    }
  }
  if (table(c.a, c.b) != net->distance(c.a, c.b)) {
    return "table(" + std::to_string(c.a) + ", " + std::to_string(c.b) +
           ") = " + std::to_string(table(c.a, c.b)) + " but distance is " +
           std::to_string(net->distance(c.a, c.b));
  }
  return std::nullopt;
}

TEST(PbtInjectedBug, CorrectDistanceTablePasses) {
  const CheckConfig cfg{.iterations = 300, .seed = 0xacd};
  const CheckOutcome out = check(
      ring_pair(16),
      [](const RingPair& c) { return ring_table_matches(c, false); }, cfg);
  EXPECT_TRUE(out.ok) << out.message;
}

TEST(PbtInjectedBug, OffByOneIsCaughtAndShrunkToMinimalCounterexample) {
  // The acceptance criterion for the harness: a deliberately injected
  // off-by-one in a DistanceTable fill must be detected, and the shrinker
  // must reduce whatever random (p, a, b) first exposed it to the
  // smallest instance that can: a 2-ring with the pair (1, 0).
  const CheckConfig cfg{.iterations = 300, .seed = 0xacd};
  const CheckOutcome out = check(
      ring_pair(16),
      [](const RingPair& c) { return ring_table_matches(c, true); }, cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.counterexample, "{p=2, a=1, b=0}") << out.message;
  EXPECT_NE(out.message.find("replay: SFCACD_PBT_SEED=0xacd"),
            std::string::npos)
      << out.message;
}

}  // namespace
}  // namespace sfc::pbt
