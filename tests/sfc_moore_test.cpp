// Canonical-Hilbert and Moore-curve tests: pinned orientation, closure of
// the loop, and the torus-ranking property that motivates the extension.
#include "sfc/moore.hpp"

#include <gtest/gtest.h>

#include "sfc/canonical_hilbert.hpp"
#include "sfc/recursive_ref.hpp"
#include "topology/grid.hpp"

namespace sfc {
namespace {

TEST(CanonicalHilbert, MatchesRecursiveReferenceExactly) {
  for (unsigned level : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const auto order = ref::hilbert2_order(level);
    for (std::size_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(canonical_hilbert_index(order[i], level), i)
          << "level " << level << " position " << i;
      ASSERT_EQ(canonical_hilbert_point(i, level), order[i])
          << "level " << level << " position " << i;
    }
  }
}

TEST(CanonicalHilbert, PinnedEndpoints) {
  for (unsigned level = 1; level <= 10; ++level) {
    EXPECT_EQ(canonical_hilbert_point(0, level), make_point(0, 0));
    EXPECT_EQ(canonical_hilbert_point(grid_size<2>(level) - 1, level),
              make_point((1u << level) - 1, 0));
  }
}

TEST(CanonicalHilbert, RoundTripAtLargeLevel) {
  constexpr unsigned kLevel = 14;
  std::uint64_t state = 777;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 40) & ((1u << kLevel) - 1);
  };
  for (int i = 0; i < 3000; ++i) {
    const Point2 p = make_point(next(), next());
    ASSERT_EQ(canonical_hilbert_point(canonical_hilbert_index(p, kLevel),
                                      kLevel),
              p);
  }
}

class MooreLevel : public ::testing::TestWithParam<unsigned> {};

TEST_P(MooreLevel, ConsecutiveIndicesAreLatticeNeighbors) {
  const unsigned level = GetParam();
  const MooreCurve curve;
  const std::uint64_t n = grid_size<2>(level);
  Point2 prev = curve.point(0, level);
  for (std::uint64_t i = 1; i < n; ++i) {
    const Point2 cur = curve.point(i, level);
    ASSERT_EQ(manhattan(prev, cur), 1u) << "between " << i - 1 << " and " << i;
    prev = cur;
  }
}

TEST_P(MooreLevel, TraversalIsAClosedLoop) {
  // The defining Moore property: the last point is adjacent to the first.
  const unsigned level = GetParam();
  const MooreCurve curve;
  const Point2 first = curve.point(0, level);
  const Point2 last = curve.point(grid_size<2>(level) - 1, level);
  EXPECT_EQ(manhattan(first, last), 1u) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, MooreLevel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Moore, QuadrantsAreContiguousQuarters) {
  const MooreCurve curve;
  constexpr unsigned kLevel = 4;
  const std::uint32_t s = 1u << (kLevel - 1);
  const std::uint64_t quarter = grid_size<2>(kLevel) / 4;
  for (std::uint32_t y = 0; y < 2 * s; ++y) {
    for (std::uint32_t x = 0; x < 2 * s; ++x) {
      const std::uint64_t idx = curve.index(make_point(x, y), kLevel);
      // LL, UL, UR, LR in that order.
      const std::uint64_t expected =
          x < s ? (y < s ? 0u : 1u) : (y < s ? 3u : 2u);
      ASSERT_EQ(idx / quarter, expected) << to_string(make_point(x, y));
    }
  }
}

TEST(Moore, TorusRankingIsAdjacentIncludingWrap) {
  // The motivation for the extension: on a torus, every pair of cyclically
  // consecutive Moore ranks is one hop apart — including p-1 -> 0, which
  // the open Hilbert curve cannot provide.
  const MooreCurve moore;
  const topo::TorusTopology<2> torus(4, moore);
  const topo::Rank p = torus.size();
  for (topo::Rank r = 0; r < p; ++r) {
    ASSERT_EQ(torus.distance(r, (r + 1) % p), 1u) << "rank " << r;
  }
}

TEST(Moore, MeshRankingIsAdjacentIncludingWrapUnlikeHilbert) {
  // Contrast on the mesh (no wraparound links): a Hilbert curve's two
  // endpoints sit on opposite corners of one grid edge, so the rank-ring
  // wrap pair is side-1 hops apart — the Moore loop keeps it at 1.
  const MooreCurve moore;
  const topo::MeshTopology<2> mesh_m(4, moore);
  const topo::Rank p = mesh_m.size();
  EXPECT_EQ(mesh_m.distance(p - 1, 0), 1u);

  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  const topo::MeshTopology<2> mesh_h(4, *hilbert);
  EXPECT_EQ(mesh_h.distance(p - 1, 0), (1u << 4) - 1);
}

TEST(Moore, RegistryIntegration) {
  EXPECT_EQ(parse_curve("moore"), CurveKind::kMoore);
  EXPECT_EQ(curve_name(CurveKind::kMoore), "Moore");
  const auto curve = make_curve<2>(CurveKind::kMoore);
  EXPECT_EQ(curve->kind(), CurveKind::kMoore);
}

}  // namespace
}  // namespace sfc
