// Unit tests for the deterministic RNG stack.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sfc::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values from the public-domain reference implementation
  // (Vigna), seed = 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(sm.next(), 0x06C45D188009454Full);
}

TEST(Xoshiro256pp, IsDeterministic) {
  Xoshiro256pp a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256pp, DifferentSeedsDiffer) {
  Xoshiro256pp a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, JumpMovesStream) {
  Xoshiro256pp a(5), b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(BoundedU64, StaysInRange) {
  Xoshiro256pp rng(77);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(bounded_u64(rng, bound), bound);
    }
  }
}

TEST(BoundedU64, BoundOneAlwaysZero) {
  Xoshiro256pp rng(78);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bounded_u64(rng, 1), 0ull);
}

TEST(BoundedU64, RoughlyUniform) {
  Xoshiro256pp rng(79);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[bounded_u64(rng, kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Uniform01, RangeAndMean) {
  Xoshiro256pp rng(80);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = uniform01(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(NormalSampler, MomentsMatchStandardNormal) {
  Xoshiro256pp rng(81);
  NormalSampler normal;
  constexpr int kDraws = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double z = normal(rng);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Exponential, MomentsMatch) {
  Xoshiro256pp rng(82);
  constexpr double kMean = 3.5;
  constexpr int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double e = exponential(rng, kMean);
    ASSERT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kDraws, kMean, 0.05);
}

TEST(SubstreamSeed, DistinctPerIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(substream_seed(99, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SubstreamSeed, DependsOnMaster) {
  EXPECT_NE(substream_seed(1, 0), substream_seed(2, 0));
}

}  // namespace
}  // namespace sfc::util
