// Link-contention extension tests: dimension-order routing, per-link
// loads, hop consistency with the ACD reducers, and the Hilbert-vs-row
// congestion contrast.
#include "core/contention.hpp"

#include <gtest/gtest.h>

#include "distribution/distribution.hpp"

namespace sfc::core {
namespace {

TEST(LinkLoadMap, SingleMessageRoutesXThenY) {
  LinkLoadMap map(2, /*wrap=*/false);  // 4x4 mesh
  map.route(make_point(0, 0), make_point(2, 1));
  // X leg: (0,0)->(1,0)->(2,0); Y leg: (2,0)->(2,1).
  EXPECT_EQ(map.link_load(0, 0, 0), 1u);
  EXPECT_EQ(map.link_load(1, 0, 0), 1u);
  EXPECT_EQ(map.link_load(2, 0, 2), 1u);
  const auto s = map.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.hops, 3u);
  EXPECT_EQ(s.links_used, 3u);
  EXPECT_EQ(s.max_link_load, 1u);
}

TEST(LinkLoadMap, NegativeDirections) {
  LinkLoadMap map(2, false);
  map.route(make_point(3, 3), make_point(1, 2));
  EXPECT_EQ(map.link_load(3, 3, 1), 1u);  // -x from (3,3)
  EXPECT_EQ(map.link_load(2, 3, 1), 1u);
  EXPECT_EQ(map.link_load(1, 3, 3), 1u);  // -y from (1,3)
  EXPECT_EQ(map.stats().hops, 3u);
}

TEST(LinkLoadMap, TorusTakesShorterWrap) {
  LinkLoadMap map(3, /*wrap=*/true);  // 8x8 torus
  map.route(make_point(7, 0), make_point(0, 0));
  // One +x hop across the wrap, not seven -x hops.
  const auto s = map.stats();
  EXPECT_EQ(s.hops, 1u);
  EXPECT_EQ(map.link_load(7, 0, 0), 1u);
}

TEST(LinkLoadMap, MeshNeverWraps) {
  LinkLoadMap map(3, false);
  map.route(make_point(7, 0), make_point(0, 0));
  EXPECT_EQ(map.stats().hops, 7u);
}

TEST(LinkLoadMap, ZeroHopMessageCountsButLoadsNothing) {
  LinkLoadMap map(2, true);
  map.route(make_point(1, 1), make_point(1, 1));
  const auto s = map.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.hops, 0u);
  EXPECT_EQ(s.links_used, 0u);
  EXPECT_DOUBLE_EQ(s.imbalance(), 0.0);
}

TEST(LinkLoadMap, TotalLinkCounts) {
  EXPECT_EQ(LinkLoadMap(2, true).stats().total_links, 4u * 4u * 4u);
  EXPECT_EQ(LinkLoadMap(2, false).stats().total_links, 2u * 2u * 4u * 3u);
}

TEST(LinkLoadMap, ResetClearsLoads) {
  LinkLoadMap map(2, false);
  map.route(make_point(0, 0), make_point(3, 3));
  map.reset();
  const auto s = map.stats();
  EXPECT_EQ(s.messages, 0u);
  EXPECT_EQ(s.hops, 0u);
}

class ContentionPipeline : public ::testing::Test {
 protected:
  ContentionPipeline() {
    dist::SampleConfig cfg;
    cfg.count = 3000;
    cfg.level = 7;
    cfg.seed = 21;
    particles_ = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  }
  std::vector<Point2> particles_;
};

TEST_F(ContentionPipeline, TorusHopsMatchAcdTotals) {
  // DOR routing on the torus takes shortest paths, so total link
  // traversals must equal the hop sum the ACD reducer computes.
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const AcdInstance<2> instance(particles_, 7, *curve);
  const fmm::Partition part(instance.particles().size(), 256);
  const topo::TorusTopology<2> torus(4, *curve);

  const auto congestion = nfi_congestion(instance, part, torus, true, 1);
  const auto totals = instance.nfi(part, torus, 1);
  EXPECT_EQ(congestion.hops, totals.hops);
  EXPECT_EQ(congestion.messages, totals.count);

  const auto ffi_cong = ffi_congestion(instance, part, torus, true);
  const auto ffi = instance.ffi(part, torus);
  EXPECT_EQ(ffi_cong.hops, ffi.total().hops);
  EXPECT_EQ(ffi_cong.messages, ffi.total().count);
}

TEST_F(ContentionPipeline, MeshHopsMatchAcdTotals) {
  const auto curve = make_curve<2>(CurveKind::kMorton);
  const AcdInstance<2> instance(particles_, 7, *curve);
  const fmm::Partition part(instance.particles().size(), 256);
  const topo::MeshTopology<2> mesh(4, *curve);

  const auto congestion = nfi_congestion(instance, part, mesh, false, 1);
  const auto totals = instance.nfi(part, mesh, 1);
  EXPECT_EQ(congestion.hops, totals.hops);
}

TEST_F(ContentionPipeline, HilbertCoolerThanRowMajorOnWorstLink) {
  // The extension's headline: the ACD-optimal ordering also keeps the
  // hottest link cooler than the row-major pairing.
  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  const auto row = make_curve<2>(CurveKind::kRowMajor);
  const fmm::Partition part(particles_.size(), 256);

  const AcdInstance<2> hi(particles_, 7, *hilbert);
  const topo::TorusTopology<2> torus_h(4, *hilbert);
  const AcdInstance<2> ri(particles_, 7, *row);
  const topo::TorusTopology<2> torus_r(4, *row);

  const auto ch = nfi_congestion(hi, part, torus_h, true, 1);
  const auto cr = nfi_congestion(ri, part, torus_r, true, 1);
  EXPECT_LT(ch.max_link_load, cr.max_link_load);
}

TEST(Contention, TooLargeGridThrows) {
  EXPECT_THROW(LinkLoadMap(14, true), std::invalid_argument);
}

TEST(LinkLoadMap, SingleCellGridHasNoLinks) {
  // Level 0: one processor cell, no links, every message is local.
  LinkLoadMap map(0, /*wrap=*/true);
  EXPECT_EQ(map.stats().total_links, 0u);
  map.route(make_point(0, 0), make_point(0, 0));
  const auto s = map.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.hops, 0u);
  EXPECT_EQ(s.links_used, 0u);
  EXPECT_EQ(s.max_link_load, 0u);
}

TEST_F(ContentionPipeline, SingleProcessorHasNoNetworkTraffic) {
  // p = 1 collapses the whole exchange onto one node: the congestion
  // model must report every message with zero hops and zero link load.
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const AcdInstance<2> instance(particles_, 7, *curve);
  const fmm::Partition part(instance.particles().size(), 1);
  const topo::TorusTopology<2> torus(0, *curve);  // 1x1 torus

  const auto congestion = nfi_congestion(instance, part, torus, true, 1);
  const auto totals = instance.nfi(part, torus, 1);
  EXPECT_EQ(congestion.messages, totals.count);
  EXPECT_GT(congestion.messages, 0u);
  EXPECT_EQ(congestion.hops, 0u);
  EXPECT_EQ(congestion.max_link_load, 0u);
  EXPECT_EQ(totals.hops, 0u);

  const auto ffi_cong = ffi_congestion(instance, part, torus, true);
  EXPECT_EQ(ffi_cong.hops, 0u);
  EXPECT_EQ(ffi_cong.max_link_load, 0u);
  EXPECT_EQ(ffi_cong.messages, instance.ffi(part, torus).total().count);
}

TEST(Contention, MoreProcessorsThanParticles) {
  // n = 3 particles on a 16-processor torus: 13 ranks own nothing. The
  // pipeline must route only between the 3 occupied ranks and still
  // agree with the ACD reducer's hop totals.
  const std::vector<Point2> particles = {make_point(0, 0), make_point(3, 3),
                                         make_point(1, 2)};
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const AcdInstance<2> instance(particles, 2, *curve);
  const fmm::Partition part(instance.particles().size(), 16);
  const topo::TorusTopology<2> torus(2, *curve);  // 4x4, p = 16

  const auto congestion = nfi_congestion(instance, part, torus, true, 3);
  const auto totals = instance.nfi(part, torus, 3);
  EXPECT_EQ(congestion.hops, totals.hops);
  EXPECT_EQ(congestion.messages, totals.count);

  const auto ffi_cong = ffi_congestion(instance, part, torus, true);
  const auto ffi = instance.ffi(part, torus);
  EXPECT_EQ(ffi_cong.hops, ffi.total().hops);
  EXPECT_EQ(ffi_cong.messages, ffi.total().count);
}

}  // namespace
}  // namespace sfc::core
