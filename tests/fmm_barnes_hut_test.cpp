// Barnes–Hut tests: solver accuracy vs direct summation, theta behaviour,
// and the communication-model variant on the ACD pipeline.
#include "fmm/barnes_hut.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "topology/linear.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace sfc::fmm {
namespace {

/// `positive` draws gravity-style masses in (0, 1]; the monopole-only
/// approximation is designed for that setting (the |q|-weighted centroid
/// cancels the dipole term only for same-sign charges).
std::vector<Charge> random_charges(std::size_t n, std::uint64_t seed,
                                   bool positive = false) {
  util::Xoshiro256pp rng(seed);
  std::vector<Charge> charges;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = positive ? util::uniform01(rng) + 1e-3
                              : util::uniform01(rng) * 2.0 - 1.0;
    charges.push_back({util::uniform01(rng), util::uniform01(rng), q});
  }
  return charges;
}

double max_abs_error(const std::vector<double>& got,
                     const std::vector<double>& want) {
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got[i] - want[i]));
  }
  return err;
}

TEST(BarnesHut, ThetaZeroIsExact) {
  const auto charges = random_charges(300, 41);
  BhConfig cfg;
  cfg.theta = 0.0;
  const BarnesHut2D bh(charges, cfg);
  const auto direct = direct_potentials(charges);
  EXPECT_LT(max_abs_error(bh.potentials(), direct), 1e-10);
  EXPECT_EQ(bh.stats().cell_evals, 0u);  // every cell opened
}

TEST(BarnesHut, ErrorShrinksWithTheta) {
  const auto charges = random_charges(500, 42, /*positive=*/true);
  const auto direct = direct_potentials(charges);
  double prev = 1e100;
  for (const double theta : {1.0, 0.6, 0.3, 0.1}) {
    BhConfig cfg;
    cfg.theta = theta;
    const BarnesHut2D bh(charges, cfg);
    const double err = max_abs_error(bh.potentials(), direct);
    EXPECT_LE(err, prev + 1e-12) << "theta " << theta;
    prev = err;
  }
  EXPECT_LT(prev, 1e-2);
}

TEST(BarnesHut, ReasonableAccuracyAtStandardTheta) {
  const auto charges = random_charges(800, 43, /*positive=*/true);
  BhConfig cfg;
  cfg.theta = 0.4;
  const BarnesHut2D bh(charges, cfg);
  const auto direct = direct_potentials(charges);
  double scale = 0.0;
  for (const double v : direct) scale = std::max(scale, std::abs(v));
  EXPECT_LT(max_abs_error(bh.potentials(), direct) / scale, 0.02);
}

TEST(BarnesHut, CheaperThanDirectAtScale) {
  const auto charges = random_charges(3000, 44);
  BhConfig cfg;
  cfg.theta = 0.7;
  const BarnesHut2D bh(charges, cfg);
  const auto& s = bh.stats();
  // Total interactions far below the n^2 of direct summation.
  EXPECT_LT(s.cell_evals + s.point_evals,
            charges.size() * charges.size() / 4);
  EXPECT_GT(s.cell_evals, 0u);
}

TEST(BarnesHut, TwoChargesExact) {
  std::vector<Charge> charges = {{0.2, 0.2, 1.0}, {0.7, 0.6, 3.0}};
  BhConfig cfg;
  cfg.theta = 0.5;
  const BarnesHut2D bh(charges, cfg);
  const double r = std::hypot(0.5, 0.4);
  EXPECT_NEAR(bh.potentials()[0], 3.0 * std::log(r), 1e-12);
  EXPECT_NEAR(bh.potentials()[1], 1.0 * std::log(r), 1e-12);
}

TEST(BarnesHut, InvalidConfigThrows) {
  const auto charges = random_charges(10, 45);
  BhConfig cfg;
  cfg.theta = 2.5;
  EXPECT_THROW(BarnesHut2D(charges, cfg), std::invalid_argument);
  cfg.theta = 0.5;
  cfg.leaf_capacity = 0;
  EXPECT_THROW(BarnesHut2D(charges, cfg), std::invalid_argument);
}

TEST(BarnesHut, EmptyInput) {
  const BarnesHut2D bh({}, BhConfig{});
  EXPECT_TRUE(bh.potentials().empty());
}

// ------------------------------------------------------- communication model

class BhCommModel : public ::testing::Test {
 protected:
  BhCommModel() {
    dist::SampleConfig cfg;
    cfg.count = 1500;
    cfg.level = 7;
    cfg.seed = 9;
    particles_ = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
    std::sort(particles_.begin(), particles_.end(),
              [](const Point2& a, const Point2& b) {
                return util::morton2_encode(a[0], a[1]) <
                       util::morton2_encode(b[0], b[1]);
              });
  }
  std::vector<Point2> particles_;
};

TEST_F(BhCommModel, ThetaZeroDegeneratesToAllPairs) {
  // Every cell is opened, so each particle talks to every other particle:
  // exactly n(n-1) ordered communications.
  const CellTree<2> tree(particles_, 7);
  const Partition part(particles_.size(), 8);
  const topo::BusTopology bus(8);
  const auto totals = bh_comm_totals(particles_, tree, part, bus, 0.0);
  EXPECT_EQ(totals.count, particles_.size() * (particles_.size() - 1));
}

TEST_F(BhCommModel, LargerThetaMeansFewerCommunications) {
  const CellTree<2> tree(particles_, 7);
  const Partition part(particles_.size(), 8);
  const topo::BusTopology bus(8);
  std::uint64_t prev = ~0ull;
  for (const double theta : {0.2, 0.5, 1.0}) {
    const auto totals = bh_comm_totals(particles_, tree, part, bus, theta);
    EXPECT_LT(totals.count, prev) << "theta " << theta;
    prev = totals.count;
  }
  // Far fewer than all-pairs at theta = 1.
  EXPECT_LT(prev, particles_.size() * (particles_.size() - 1) / 10);
}

TEST_F(BhCommModel, SingleProcessorAllZeroHops) {
  const CellTree<2> tree(particles_, 7);
  const Partition part(particles_.size(), 1);
  const topo::BusTopology bus(1);
  const auto totals = bh_comm_totals(particles_, tree, part, bus, 0.5);
  EXPECT_GT(totals.count, 0u);
  EXPECT_EQ(totals.hops, 0u);
}

TEST_F(BhCommModel, HilbertOrderBeatsRowMajorUnderBhModelToo) {
  // The paper's recommendation transfers to the Barnes–Hut communication
  // structure: Hilbert particle order + Hilbert torus ranking yields lower
  // ACD than row-major + row-major.
  auto run = [&](CurveKind kind) {
    const auto curve = make_curve<2>(kind);
    auto sorted = particles_;
    std::sort(sorted.begin(), sorted.end(),
              [&](const Point2& a, const Point2& b) {
                return curve->index(a, 7) < curve->index(b, 7);
              });
    const CellTree<2> tree(sorted, 7);
    const Partition part(sorted.size(), 256);
    const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                            curve.get());
    return bh_comm_totals(sorted, tree, part, *net, 0.5).acd();
  };
  EXPECT_LT(run(CurveKind::kHilbert), run(CurveKind::kRowMajor));
}

TEST(BhCommModelValidation, BadThetaThrows) {
  const std::vector<Point2> particles = {make_point(0, 0)};
  const CellTree<2> tree(particles, 2);
  const Partition part(1, 1);
  const topo::BusTopology bus(1);
  EXPECT_THROW(bh_comm_totals(particles, tree, part, bus, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfc::fmm
