// Morton (Z-curve) and Gray-order tests against the recursive references
// and the defining bit properties.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "sfc/gray.hpp"
#include "sfc/morton.hpp"
#include "sfc/recursive_ref.hpp"
#include "util/bits.hpp"

namespace sfc {
namespace {

class ZGrayLevel : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZGrayLevel, MortonMatchesRecursiveOrder) {
  const unsigned level = GetParam();
  const MortonCurve<2> curve;
  const auto order = ref::morton2_order(level);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(curve.index(order[i], level), i)
        << "point " << to_string(order[i]);
    ASSERT_EQ(curve.point(i, level), order[i]);
  }
}

TEST_P(ZGrayLevel, GrayMatchesRecursiveOrder) {
  const unsigned level = GetParam();
  const GrayCurve<2> curve;
  const auto order = ref::gray2_order(level);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(curve.index(order[i], level), i)
        << "point " << to_string(order[i]);
    ASSERT_EQ(curve.point(i, level), order[i]);
  }
}

TEST_P(ZGrayLevel, GrayConsecutivePointsDifferInOneMortonBit) {
  // The defining property: successive points in the Gray order have Morton
  // codes that differ in exactly one bit.
  const unsigned level = GetParam();
  const GrayCurve<2> curve;
  const std::uint64_t n = grid_size<2>(level);
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    const std::uint64_t ma = morton_index(curve.point(i, level));
    const std::uint64_t mb = morton_index(curve.point(i + 1, level));
    ASSERT_EQ(std::popcount(ma ^ mb), 1) << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, ZGrayLevel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(MortonKnownValues, Level1Order) {
  // LL, LR, UL, UR.
  const MortonCurve<2> curve;
  EXPECT_EQ(curve.point(0, 1), make_point(0, 0));
  EXPECT_EQ(curve.point(1, 1), make_point(1, 0));
  EXPECT_EQ(curve.point(2, 1), make_point(0, 1));
  EXPECT_EQ(curve.point(3, 1), make_point(1, 1));
}

TEST(GrayKnownValues, Level1Order) {
  // LL, LR, UR, UL — the "U on its side".
  const GrayCurve<2> curve;
  EXPECT_EQ(curve.point(0, 1), make_point(0, 0));
  EXPECT_EQ(curve.point(1, 1), make_point(1, 0));
  EXPECT_EQ(curve.point(2, 1), make_point(1, 1));
  EXPECT_EQ(curve.point(3, 1), make_point(0, 1));
}

TEST(GrayKnownValues, Level2SpotChecks) {
  // Derived by hand from index = gray_decode(morton):
  // point (0,2): morton 8, gray_decode(8) = 15.
  const GrayCurve<2> curve;
  EXPECT_EQ(curve.index(make_point(0, 2), 2), 15u);
  // point (3,3): morton 15, gray_decode(15) = 10.
  EXPECT_EQ(curve.index(make_point(3, 3), 2), 10u);
}

TEST(MortonStructure, QuadrantIsTopTwoIndexBits) {
  // The Z-curve's top two index bits select the quadrant (y then x).
  const MortonCurve<2> curve;
  constexpr unsigned kLevel = 4;
  const std::uint32_t side = 1u << kLevel;
  const std::uint64_t quarter = grid_size<2>(kLevel) / 4;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const std::uint64_t idx = curve.index(make_point(x, y), kLevel);
      const std::uint64_t block = idx / quarter;
      const std::uint64_t expected =
          (y >= side / 2 ? 2u : 0u) + (x >= side / 2 ? 1u : 0u);
      ASSERT_EQ(block, expected);
    }
  }
}

TEST(MortonStructure, SelfSimilarAcrossLevels) {
  // Z_{k+1} restricted to a quadrant is Z_k offset by the quadrant rank.
  const MortonCurve<2> curve;
  constexpr unsigned kLevel = 5;
  const std::uint32_t sub = 1u << (kLevel - 1);
  const std::uint64_t quarter = grid_size<2>(kLevel) / 4;
  for (std::uint32_t y = 0; y < sub; ++y) {
    for (std::uint32_t x = 0; x < sub; ++x) {
      const std::uint64_t inner = curve.index(make_point(x, y), kLevel - 1);
      // Upper-right quadrant has rank 3.
      ASSERT_EQ(curve.index(make_point(x + sub, y + sub), kLevel),
                3 * quarter + inner);
    }
  }
}

TEST(GrayVsMorton, SameUnorderedPositionsPerQuadrantBlock) {
  // Gray is a reordering of Morton *blocks*: within a level-1 block of the
  // index range, both curves visit the same set of points at level >= 1.
  const MortonCurve<2> morton;
  const GrayCurve<2> gray;
  constexpr unsigned kLevel = 3;
  const std::uint64_t n = grid_size<2>(kLevel);
  // Quadrant of Morton block b is b; quadrant of Gray block b is gray(b).
  for (std::uint64_t block = 0; block < 4; ++block) {
    const std::uint64_t quarter = n / 4;
    std::vector<std::uint64_t> mset, gset;
    for (std::uint64_t i = 0; i < quarter; ++i) {
      mset.push_back(
          pack(morton.point(util::gray_encode(block) * quarter + i, kLevel),
               kLevel));
      gset.push_back(pack(gray.point(block * quarter + i, kLevel), kLevel));
    }
    std::sort(mset.begin(), mset.end());
    std::sort(gset.begin(), gset.end());
    ASSERT_EQ(mset, gset) << "block " << block;
  }
}

}  // namespace
}  // namespace sfc
