// N-body integrator tests: the physics invariants a symplectic,
// time-reversible integrator must satisfy — energy drift bounded,
// momentum conserved, forward-then-backward returns to the start — plus
// FMM/direct force-path agreement.
#include "fmm/nbody.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sfc::fmm {
namespace {

/// A loose central cluster with small random velocities: stays away from
/// walls and close encounters over short horizons.
NbodyIntegrator make_cluster(std::size_t n, std::uint64_t seed,
                             const NbodyConfig& cfg) {
  util::Xoshiro256pp rng(seed);
  std::vector<Charge> bodies;
  std::vector<Vec2> velocities;
  for (std::size_t i = 0; i < n; ++i) {
    bodies.push_back({0.35 + 0.3 * util::uniform01(rng),
                      0.35 + 0.3 * util::uniform01(rng),
                      0.5 + util::uniform01(rng)});
    velocities.push_back({0.1 * (util::uniform01(rng) - 0.5),
                          0.1 * (util::uniform01(rng) - 0.5)});
  }
  return NbodyIntegrator(std::move(bodies), std::move(velocities), cfg);
}

TEST(Nbody, EnergyDriftSmallAndSecondOrderInDt) {
  // Same physical horizon at two timesteps: leapfrog's energy error is
  // O(dt^2), so quartering dt must cut the drift by well over 2x, and the
  // finer run must conserve energy tightly (the log kernel's close
  // encounters make the absolute constant input-dependent, hence the
  // convergence-based assertion).
  auto drift_at = [](double dt, unsigned steps) {
    NbodyConfig cfg;
    cfg.dt = dt;
    cfg.use_fmm = false;
    auto sim = make_cluster(40, 11, cfg);
    const double e0 = sim.total_energy();
    sim.step(steps);
    EXPECT_EQ(sim.wall_bounces(), 0u);
    return std::abs(sim.total_energy() - e0) / std::abs(e0);
  };
  const double coarse = drift_at(1e-4, 100);
  const double fine = drift_at(2.5e-5, 400);
  EXPECT_LT(fine, coarse / 2.0);
  EXPECT_LT(fine, 2e-3);
}

TEST(Nbody, MomentumConservedWithoutWalls) {
  NbodyConfig cfg;
  cfg.dt = 1e-4;
  cfg.use_fmm = false;
  auto sim = make_cluster(30, 12, cfg);
  const Vec2 p0 = sim.momentum();
  sim.step(100);
  ASSERT_EQ(sim.wall_bounces(), 0u);
  const Vec2 p1 = sim.momentum();
  // Internal forces cancel pairwise (Newton's third law, exact in FP up
  // to summation order).
  EXPECT_NEAR(p1.x, p0.x, 1e-9);
  EXPECT_NEAR(p1.y, p0.y, 1e-9);
}

TEST(Nbody, LeapfrogIsTimeReversible) {
  NbodyConfig cfg;
  cfg.dt = 1e-4;
  cfg.use_fmm = false;
  auto sim = make_cluster(25, 13, cfg);
  const auto start = sim.bodies();
  sim.step(50);
  ASSERT_EQ(sim.wall_bounces(), 0u);
  sim.reverse();
  sim.step(50);
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_NEAR(sim.bodies()[i].x, start[i].x, 1e-9) << "body " << i;
    EXPECT_NEAR(sim.bodies()[i].y, start[i].y, 1e-9) << "body " << i;
  }
}

TEST(Nbody, FmmAndDirectTrajectoriesAgree) {
  NbodyConfig direct_cfg;
  direct_cfg.dt = 1e-4;
  direct_cfg.use_fmm = false;
  NbodyConfig fmm_cfg = direct_cfg;
  fmm_cfg.use_fmm = true;
  fmm_cfg.fmm.tree_level = 3;
  fmm_cfg.fmm.terms = 18;

  auto a = make_cluster(120, 14, direct_cfg);
  auto b = make_cluster(120, 14, fmm_cfg);
  a.step(20);
  b.step(20);
  for (std::size_t i = 0; i < a.bodies().size(); ++i) {
    ASSERT_NEAR(a.bodies()[i].x, b.bodies()[i].x, 1e-7) << "body " << i;
    ASSERT_NEAR(a.bodies()[i].y, b.bodies()[i].y, 1e-7) << "body " << i;
  }
}

TEST(Nbody, WallsReflectAndKeepBodiesInside) {
  NbodyConfig cfg;
  cfg.dt = 1e-2;
  cfg.use_fmm = false;
  std::vector<Charge> bodies = {{0.98, 0.5, 1.0}, {0.02, 0.5, 1.0}};
  std::vector<Vec2> velocities = {{5.0, 0.0}, {-5.0, 0.0}};
  NbodyIntegrator sim(std::move(bodies), std::move(velocities), cfg);
  sim.step(20);
  EXPECT_GT(sim.wall_bounces(), 0u);
  for (const auto& b : sim.bodies()) {
    EXPECT_GE(b.x, 0.0);
    EXPECT_LT(b.x, 1.0);
    EXPECT_GE(b.y, 0.0);
    EXPECT_LT(b.y, 1.0);
  }
}

TEST(Nbody, TwoBodyAttraction) {
  // Two masses at rest accelerate toward each other.
  NbodyConfig cfg;
  cfg.dt = 1e-3;
  cfg.use_fmm = false;
  std::vector<Charge> bodies = {{0.3, 0.5, 1.0}, {0.7, 0.5, 1.0}};
  NbodyIntegrator sim(std::move(bodies), {}, cfg);
  const double gap0 = sim.bodies()[1].x - sim.bodies()[0].x;
  sim.step(50);
  const double gap1 = sim.bodies()[1].x - sim.bodies()[0].x;
  EXPECT_LT(gap1, gap0);
  // Symmetric: the midpoint stays put.
  EXPECT_NEAR(sim.bodies()[0].x + sim.bodies()[1].x, 1.0, 1e-9);
}

TEST(Nbody, InvalidInputsThrow) {
  NbodyConfig cfg;
  cfg.dt = 0.0;
  EXPECT_THROW(NbodyIntegrator({{0.5, 0.5, 1.0}}, {}, cfg),
               std::invalid_argument);
  cfg.dt = 1e-3;
  EXPECT_THROW(NbodyIntegrator({{0.5, 0.5, -1.0}}, {}, cfg),
               std::invalid_argument);
}

TEST(Nbody, StepCountsAccumulate) {
  NbodyConfig cfg;
  cfg.dt = 1e-4;
  cfg.use_fmm = false;
  auto sim = make_cluster(10, 15, cfg);
  sim.step(3);
  sim.step(2);
  EXPECT_EQ(sim.steps_taken(), 5u);
}

}  // namespace
}  // namespace sfc::fmm
