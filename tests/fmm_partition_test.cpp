// Partition tests: chunk sizes, boundaries, and O(1) owner lookup.
#include "fmm/partition.hpp"

#include <gtest/gtest.h>

namespace sfc::fmm {
namespace {

TEST(Partition, EvenSplit) {
  const Partition part(100, 4);
  EXPECT_EQ(part.chunk_size(0), 25u);
  EXPECT_EQ(part.chunk_size(3), 25u);
  EXPECT_EQ(part.proc_of(0), 0u);
  EXPECT_EQ(part.proc_of(24), 0u);
  EXPECT_EQ(part.proc_of(25), 1u);
  EXPECT_EQ(part.proc_of(99), 3u);
}

TEST(Partition, UnevenSplitFirstChunksLarger) {
  const Partition part(10, 3);  // 4, 3, 3
  EXPECT_EQ(part.chunk_size(0), 4u);
  EXPECT_EQ(part.chunk_size(1), 3u);
  EXPECT_EQ(part.chunk_size(2), 3u);
  EXPECT_EQ(part.proc_of(3), 0u);
  EXPECT_EQ(part.proc_of(4), 1u);
  EXPECT_EQ(part.proc_of(6), 1u);
  EXPECT_EQ(part.proc_of(7), 2u);
}

TEST(Partition, MoreProcessorsThanParticles) {
  const Partition part(3, 8);
  EXPECT_EQ(part.proc_of(0), 0u);
  EXPECT_EQ(part.proc_of(1), 1u);
  EXPECT_EQ(part.proc_of(2), 2u);
  EXPECT_EQ(part.chunk_size(3), 0u);
  EXPECT_EQ(part.chunk_size(7), 0u);
}

TEST(Partition, SingleProcessorOwnsEverything) {
  const Partition part(1000, 1);
  for (std::size_t i = 0; i < 1000; i += 17) {
    EXPECT_EQ(part.proc_of(i), 0u);
  }
}

TEST(Partition, ChunkBeginIsConsistentWithProcOf) {
  const Partition part(1237, 16);
  for (topo::Rank r = 0; r < 16; ++r) {
    const std::size_t begin = part.chunk_begin(r);
    const std::size_t end = part.chunk_begin(r + 1);
    for (std::size_t i = begin; i < end; ++i) {
      ASSERT_EQ(part.proc_of(i), r) << "i=" << i;
    }
  }
  EXPECT_EQ(part.chunk_begin(16), 1237u);
}

TEST(Partition, ChunkSizesDifferByAtMostOne) {
  for (const std::size_t n : {1000u, 1023u, 65536u, 7u}) {
    for (const topo::Rank p : {3u, 16u, 64u, 255u}) {
      const Partition part(n, p);
      std::size_t lo = n, hi = 0, total = 0;
      for (topo::Rank r = 0; r < p; ++r) {
        const std::size_t s = part.chunk_size(r);
        lo = std::min(lo, s);
        hi = std::max(hi, s);
        total += s;
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(hi - lo, 1u) << "n=" << n << " p=" << p;
    }
  }
}

TEST(WeightedPartition, UniformWeightsMatchEqualCountCuts) {
  const std::vector<double> weights(100, 1.0);
  const auto part = Partition::weighted(weights, 4);
  EXPECT_TRUE(part.is_weighted());
  for (topo::Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(part.chunk_size(r), 25u) << "rank " << r;
  }
  EXPECT_NEAR(part.imbalance(weights), 1.0, 1e-12);
}

TEST(WeightedPartition, SkewedWeightsBalanceLoadNotCounts) {
  // First 10 particles carry weight 10 each, the other 90 weight 1:
  // total 190, ideal 95 per chunk of 2. The cut lands mid-heavy-range.
  std::vector<double> weights(100, 1.0);
  for (int i = 0; i < 10; ++i) weights[static_cast<std::size_t>(i)] = 10.0;
  const auto part = Partition::weighted(weights, 2);
  EXPECT_LT(part.chunk_size(0), 50u);  // the heavy chunk holds fewer items
  EXPECT_LT(part.imbalance(weights), 1.2);
  // Equal-count chunking is badly imbalanced on the same weights.
  const Partition naive(100, 2);
  EXPECT_GT(naive.imbalance(weights), 1.4);
}

TEST(WeightedPartition, ProcOfConsistentWithChunkBegins) {
  std::vector<double> weights;
  for (int i = 0; i < 333; ++i) {
    weights.push_back(1.0 + (i % 7) * 0.5);
  }
  const auto part = Partition::weighted(weights, 16);
  for (topo::Rank r = 0; r < 16; ++r) {
    for (std::size_t i = part.chunk_begin(r); i < part.chunk_begin(r + 1);
         ++i) {
      ASSERT_EQ(part.proc_of(i), r) << "i=" << i;
    }
  }
  EXPECT_EQ(part.chunk_begin(16), 333u);
}

TEST(WeightedPartition, MoreProcessorsThanWeightLeavesEmptyChunks) {
  const std::vector<double> weights = {5.0, 5.0};
  const auto part = Partition::weighted(weights, 8);
  std::size_t total = 0;
  for (topo::Rank r = 0; r < 8; ++r) total += part.chunk_size(r);
  EXPECT_EQ(total, 2u);
}

TEST(WeightedPartition, ChunksAreContiguousAndMonotone) {
  std::vector<double> weights;
  for (int i = 0; i < 500; ++i) {
    weights.push_back(i < 250 ? 0.1 : 3.0);
  }
  const auto part = Partition::weighted(weights, 10);
  topo::Rank prev = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const topo::Rank r = part.proc_of(i);
    ASSERT_GE(r, prev);
    prev = r;
  }
}

TEST(Partition, OwnersAreMonotone) {
  const Partition part(997, 31);
  topo::Rank prev = 0;
  for (std::size_t i = 0; i < 997; ++i) {
    const topo::Rank r = part.proc_of(i);
    ASSERT_GE(r, prev);
    ASSERT_LT(r, 31u);
    prev = r;
  }
  EXPECT_EQ(prev, 30u);  // every processor ends up used (n > p)
}

}  // namespace
}  // namespace sfc::fmm
