// Tests of the particle samplers: determinism, distinct-cell guarantee,
// range safety, and coarse statistical shape per distribution.
#include "distribution/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sfc::dist {
namespace {

SampleConfig config(std::size_t count, unsigned level, std::uint64_t seed) {
  SampleConfig cfg;
  cfg.count = count;
  cfg.level = level;
  cfg.seed = seed;
  return cfg;
}

class SamplerKind : public ::testing::TestWithParam<DistKind> {};

TEST_P(SamplerKind, ProducesRequestedCountInGrid) {
  const auto particles =
      sample_particles<2>(GetParam(), config(5000, 8, 42));
  EXPECT_EQ(particles.size(), 5000u);
  for (const auto& p : particles) {
    ASSERT_TRUE(in_grid(p, 8)) << to_string(p);
  }
}

TEST_P(SamplerKind, CellsAreDistinct) {
  const auto particles =
      sample_particles<2>(GetParam(), config(4000, 7, 43));
  std::set<std::uint64_t> cells;
  for (const auto& p : particles) cells.insert(pack(p, 7));
  EXPECT_EQ(cells.size(), particles.size());
}

TEST_P(SamplerKind, DeterministicForSameSeed) {
  const auto a = sample_particles<2>(GetParam(), config(1000, 8, 7));
  const auto b = sample_particles<2>(GetParam(), config(1000, 8, 7));
  EXPECT_EQ(a, b);
}

TEST_P(SamplerKind, DifferentSeedsDiffer) {
  const auto a = sample_particles<2>(GetParam(), config(1000, 8, 1));
  const auto b = sample_particles<2>(GetParam(), config(1000, 8, 2));
  EXPECT_NE(a, b);
}

TEST_P(SamplerKind, ThreeDimensionalSampling) {
  const auto particles =
      sample_particles<3>(GetParam(), config(2000, 5, 11));
  EXPECT_EQ(particles.size(), 2000u);
  std::set<std::uint64_t> cells;
  for (const auto& p : particles) {
    ASSERT_TRUE(in_grid(p, 5));
    cells.insert(pack(p, 5));
  }
  EXPECT_EQ(cells.size(), particles.size());
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, SamplerKind,
                         ::testing::ValuesIn(kExtendedDistributions),
                         [](const ::testing::TestParamInfo<DistKind>& inf) {
                           return std::string(dist_name(inf.param));
                         });

TEST(UniformSampler, QuadrantCountsAreBalanced) {
  const auto particles =
      sample_particles<2>(DistKind::kUniform, config(40000, 9, 3));
  const std::uint32_t half = 1u << 8;
  int counts[4] = {0, 0, 0, 0};
  for (const auto& p : particles) {
    ++counts[(p[0] >= half ? 1 : 0) + (p[1] >= half ? 2 : 0)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(NormalSampler, MassConcentratesAtCenter) {
  const auto particles =
      sample_particles<2>(DistKind::kNormal, config(20000, 9, 4));
  const double center = 256.0;
  int inner = 0;
  for (const auto& p : particles) {
    const double dx = p[0] - center;
    const double dy = p[1] - center;
    // Within one sigma box (sigma = 0.2 * 512 = 102.4).
    if (std::abs(dx) < 102.4 && std::abs(dy) < 102.4) ++inner;
  }
  // For independent axes: P(|X|<sigma)^2 ~ 0.683^2 ~ 0.466 before
  // truncation/dedup; dedup pushes it down a little.
  EXPECT_GT(inner, 20000 * 0.35);
  EXPECT_LT(inner, 20000 * 0.60);
}

TEST(ExponentialSampler, MassConcentratesInLowCorner) {
  const auto particles =
      sample_particles<2>(DistKind::kExponential, config(20000, 9, 5));
  const std::uint32_t half = 1u << 8;
  int corner = 0;
  for (const auto& p : particles) {
    if (p[0] < half && p[1] < half) ++corner;
  }
  // P(X < side/2) = 1 - e^{-0.5/0.35} ~ 0.76 per axis -> ~0.58 in the
  // corner quadrant (before truncation/dedup spreading).
  EXPECT_GT(corner, 20000 * 0.5);
  // And far more than the uniform expectation of one quarter.
  EXPECT_GT(corner, 20000 / 4 * 17 / 10);
}

TEST(ClusterSampler, MassSitsNearTheBlobs) {
  // With 8 tight blobs, the sampled set is far more concentrated than a
  // uniform draw: measure occupancy of 16x16 coarse tiles — the clustered
  // draw must leave most tiles (nearly) empty.
  SampleConfig cfg = config(10000, 9, 12);
  const auto clustered = sample_particles<2>(DistKind::kClusters, cfg);
  const auto uniform = sample_particles<2>(DistKind::kUniform, cfg);
  auto occupied_tiles = [](const std::vector<Point2>& pts) {
    std::set<std::uint32_t> tiles;
    for (const auto& p : pts) {
      tiles.insert((p[1] >> 5 << 4) | (p[0] >> 5));
    }
    return tiles.size();
  };
  EXPECT_LT(occupied_tiles(clustered), occupied_tiles(uniform) / 2);
}

TEST(ClusterSampler, CenterCountIsConfigurable) {
  SampleConfig cfg = config(2000, 9, 13);
  cfg.cluster_count = 1;
  cfg.cluster_sigma_frac = 0.02;
  const auto particles = sample_particles<2>(DistKind::kClusters, cfg);
  // One tight blob: the bounding box is a small fraction of the grid.
  std::uint32_t min_x = ~0u, max_x = 0, min_y = ~0u, max_y = 0;
  for (const auto& p : particles) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  EXPECT_LT(max_x - min_x, 200u);
  EXPECT_LT(max_y - min_y, 200u);
}

TEST(BoundarySampler, MassHugsTheDomainFaces) {
  // kBoundary places each particle uniform along a per-particle random
  // face with exponential depth inward (mean depth_frac * side = 25.6
  // cells at level 9): nearly all mass sits within a shallow band of
  // some face, far more than a uniform draw puts there.
  SampleConfig cfg = config(20000, 9, 21);
  const auto boundary = sample_particles<2>(DistKind::kBoundary, cfg);
  const auto uniform = sample_particles<2>(DistKind::kUniform, cfg);
  const std::uint32_t side = 1u << 9;
  const std::uint32_t band = side / 10;  // 0.1 * side
  auto near_face = [&](const std::vector<Point2>& pts) {
    int n = 0;
    for (const auto& p : pts) {
      const std::uint32_t dx = std::min(p[0], side - 1 - p[0]);
      const std::uint32_t dy = std::min(p[1], side - 1 - p[1]);
      if (std::min(dx, dy) < band) ++n;
    }
    return n;
  };
  // P(depth < 0.1 side) = 1 - e^{-2} ~ 0.86 before dedup spreading; the
  // uniform two-band expectation is 1 - 0.8^2 = 0.36.
  EXPECT_GT(near_face(boundary), 20000 * 7 / 10);
  EXPECT_GT(near_face(boundary), near_face(uniform) * 3 / 2);
}

TEST(BoundarySampler, AllFourFacesGetComparableMass) {
  // The face is drawn per particle (uniform over the 2D faces), so every
  // face of the domain carries roughly a quarter of the boundary layer —
  // no face starves.
  const auto pts =
      sample_particles<2>(DistKind::kBoundary, config(20000, 9, 31));
  const std::uint32_t side = 1u << 9;
  const std::uint32_t band = side / 10;
  int faces[4] = {0, 0, 0, 0};  // x-low, x-high, y-low, y-high
  for (const auto& p : pts) {
    // Attribute each banded particle to its nearest face.
    const std::uint32_t d[4] = {p[0], side - 1 - p[0], p[1],
                                side - 1 - p[1]};
    std::size_t best = 0;
    for (std::size_t f = 1; f < 4; ++f) {
      if (d[f] < d[best]) best = f;
    }
    if (d[best] < band) ++faces[best];
  }
  for (const int count : faces) {
    EXPECT_GT(count, 20000 / 8);  // each face well above half its share
  }
}

TEST(SkewedSampler, MassPilesIntoTheLowCorner) {
  // u^3 per axis: P(X < side/2) = (1/2)^{1/3} ~ 0.794, so the low corner
  // quadrant holds ~63% of the mass — well above the exponential
  // sampler's ~58% and far above the uniform 25%.
  const auto particles =
      sample_particles<2>(DistKind::kSkewed, config(20000, 9, 22));
  const std::uint32_t half = 1u << 8;
  int corner = 0;
  for (const auto& p : particles) {
    if (p[0] < half && p[1] < half) ++corner;
  }
  EXPECT_GT(corner, 20000 / 2);
  EXPECT_GT(corner, 20000 / 4 * 2);
}

TEST(SkewedSampler, ExponentKnobControlsTheSkew) {
  // skew_exponent = 1 degenerates to uniform; higher exponents push the
  // low-corner share up monotonically.
  auto corner_share = [](double exponent) {
    SampleConfig cfg = config(10000, 9, 23);
    cfg.skew_exponent = exponent;
    const auto pts = sample_particles<2>(DistKind::kSkewed, cfg);
    int corner = 0;
    const std::uint32_t half = 1u << 8;
    for (const auto& p : pts) {
      if (p[0] < half && p[1] < half) ++corner;
    }
    return corner;
  };
  const int flat = corner_share(1.0);
  const int cubed = corner_share(3.0);
  const int sixth = corner_share(6.0);
  EXPECT_NEAR(flat, 2500, 400);  // uniform quarter
  EXPECT_GT(cubed, flat * 2);
  EXPECT_GT(sixth, cubed);
}

TEST(PlummerSampler, HalfMassRadiusMatchesTheory) {
  // The projected (2-D) Plummer profile has half-mass radius exactly a
  // (Plummer 1911): half of the particles fall within the scale radius.
  SampleConfig cfg = config(20000, 10, 14);
  const auto particles = sample_particles<2>(DistKind::kPlummer, cfg);
  const double a = cfg.plummer_radius_frac * 1024.0;
  const double cx = 512.0, cy = 512.0;
  int inside = 0;
  for (const auto& p : particles) {
    const double dx = p[0] - cx;
    const double dy = p[1] - cy;
    if (dx * dx + dy * dy < a * a) ++inside;
  }
  // Truncation at the grid boundary and cell dedup shift it slightly.
  EXPECT_NEAR(inside, 10000, 1200);
}

TEST(Sampler, CountLargerThanGridThrows) {
  EXPECT_THROW(sample_particles<2>(DistKind::kUniform, config(17, 2, 1)),
               std::runtime_error);
}

TEST(Sampler, FullGridIsFeasibleForUniform) {
  const auto particles =
      sample_particles<2>(DistKind::kUniform, config(256, 4, 6));
  EXPECT_EQ(particles.size(), 256u);
}

TEST(Drift, PreservesCountAndDistinctness) {
  auto particles = sample_particles<2>(DistKind::kUniform, config(3000, 7, 71));
  const std::size_t n = particles.size();
  for (std::uint64_t step = 0; step < 5; ++step) {
    drift_particles<2>(particles, 7, 71, step);
    ASSERT_EQ(particles.size(), n);
    std::set<std::uint64_t> cells;
    for (const auto& p : particles) {
      ASSERT_TRUE(in_grid(p, 7));
      cells.insert(pack(p, 7));
    }
    ASSERT_EQ(cells.size(), n) << "step " << step;
  }
}

TEST(Drift, MovesAtMostOneCellPerStep) {
  auto particles = sample_particles<2>(DistKind::kNormal, config(800, 7, 72));
  const auto before = particles;
  drift_particles<2>(particles, 7, 72, 0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    ASSERT_LE(chebyshev(before[i], particles[i]), 1u);
    if (!(before[i] == particles[i])) ++moved;
  }
  // Most particles should actually move on a sparse grid.
  EXPECT_GT(moved, particles.size() / 2);
}

TEST(Drift, DeterministicPerStep) {
  auto a = sample_particles<2>(DistKind::kUniform, config(500, 7, 73));
  auto b = a;
  drift_particles<2>(a, 7, 73, 4);
  drift_particles<2>(b, 7, 73, 4);
  EXPECT_EQ(a, b);
  drift_particles<2>(b, 7, 73, 5);
  EXPECT_NE(a, b);
}

TEST(Drift, ThreeDimensional) {
  auto particles = sample_particles<3>(DistKind::kUniform, config(400, 4, 74));
  const auto before = particles;
  drift_particles<3>(particles, 4, 74, 0);
  std::set<std::uint64_t> cells;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    ASSERT_LE(chebyshev(before[i], particles[i]), 1u);
    cells.insert(pack(particles[i], 4));
  }
  EXPECT_EQ(cells.size(), particles.size());
}

TEST(Sampler, NamesRoundTripThroughParser) {
  for (const DistKind kind : kAllDistributions) {
    const auto parsed = parse_dist(dist_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_dist("cauchy").has_value());
}

}  // namespace
}  // namespace sfc::dist
