// Unit tests for the table formatter.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sfc::util {
namespace {

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
  EXPECT_EQ(format_fixed(-0.5, 2), "-0.50");
}

TEST(Table, CsvRoundTrip) {
  Table t("demo");
  t.set_header({"curve", "a", "b"});
  t.set_precision(1);
  t.add_row("Hilbert", {1.0, 2.5});
  t.add_row("Z", {3.25, 4.0});
  const std::string csv = t.to_string(TableStyle::kCsv);
  EXPECT_EQ(csv, "curve,a,b\nHilbert,1.0,2.5\nZ,3.2,4.0\n");
}

TEST(Table, AsciiContainsHeaderAndCells) {
  Table t("title");
  t.set_header({"x", "y"});
  t.add_row("r1", {7.0});
  const std::string s = t.to_string(TableStyle::kAscii);
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find("7.000"), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row("r", {1.0});
  const std::string s = t.to_string(TableStyle::kMarkdown);
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, MarksRowAndColumnMinima) {
  // Mirrors the paper's boldface (row min, '*') and italics (col min, '^').
  Table t;
  t.set_header({"", "c1", "c2"});
  t.mark_minima(true);
  t.set_precision(0);
  t.add_row("r1", {1.0, 5.0});  // 1 is row min AND col-1 min
  t.add_row("r2", {2.0, 3.0});  // 2 is row min; 3 is col-2 min
  const std::string csv = t.to_string(TableStyle::kCsv);
  EXPECT_NE(csv.find("1*^"), std::string::npos);
  EXPECT_NE(csv.find("2*"), std::string::npos);
  EXPECT_NE(csv.find("3^"), std::string::npos);
  EXPECT_EQ(csv.find("5*"), std::string::npos);
  EXPECT_EQ(csv.find("5^"), std::string::npos);
}

TEST(Table, TextRowsAppendVerbatim) {
  Table t;
  t.add_text_row({"alpha", "beta"});
  const std::string csv = t.to_string(TableStyle::kCsv);
  EXPECT_EQ(csv, "alpha,beta\n");
}

TEST(Table, RowsCount) {
  Table t;
  EXPECT_EQ(t.rows(), 0u);
  t.add_row("x", {1.0});
  t.add_text_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace sfc::util
