// Differential properties of the incremental ACD engine (DynamicAcd).
// The retract/update/assert delta algebra must reproduce a full
// recompute of the frozen assignment *bit-identically* after every move
// batch — across curves, topologies, move patterns (drift, teleport,
// swap, boundary churn), serial vs threaded application, lazy
// re-partitioning, and both dimensions. The oracles are the brute-force
// definitional implementations in tests/oracles/; the suite closes with
// the injected-bug acceptance test: a deliberately skipped stale
// subtraction must be caught and shrunk to a minimal move batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dynamic_acd.hpp"
#include "core/totals.hpp"
#include "fmm/ffi.hpp"
#include "oracles/oracles.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sfc::pbt {
namespace {

// ----------------------------------------------------------- move batches

/// The dynamics the differential exercises. A batch is *specified* by
/// (pattern, seed, count) and resolved against the engine's evolving
/// particle state right before application, so every spec stays a valid
/// move set no matter what earlier batches did.
enum class MovePattern : std::uint8_t {
  kDrift = 0,     // one-cell steps, the bench's dynamics
  kTeleport = 1,  // long jumps to random empty cells
  kSwap = 2,      // pairs exchange cells (displacement chains)
  kChurn = 3,     // one-cell steps that cross a parent-cell boundary
};

const char* pattern_name(MovePattern p) {
  switch (p) {
    case MovePattern::kDrift:
      return "drift";
    case MovePattern::kTeleport:
      return "teleport";
    case MovePattern::kSwap:
      return "swap";
    case MovePattern::kChurn:
      return "churn";
  }
  return "?";
}

struct BatchSpec {
  MovePattern pattern = MovePattern::kDrift;
  std::uint64_t seed = 0;
  std::uint32_t count = 1;  // movers (or swap pairs) attempted
};

std::ostream& operator<<(std::ostream& os, const BatchSpec& b) {
  return os << pattern_name(b.pattern) << "(count=" << b.count
            << ", seed=" << b.seed << ")";
}

/// Deterministically turn a spec into a valid move batch for the given
/// positions: indices distinct, targets on-grid, final cells distinct
/// (candidates are validated against an evolving occupancy set, exactly
/// like core::drift_moves).
template <int D>
std::vector<core::ParticleMove<D>> resolve_batch(
    const BatchSpec& spec, const std::vector<Point<D>>& positions,
    unsigned level) {
  const std::size_t n = positions.size();
  std::vector<core::ParticleMove<D>> moves;
  if (n == 0) return moves;
  if (spec.pattern == MovePattern::kDrift) {
    const double fraction =
        static_cast<double>(spec.count) / static_cast<double>(n);
    return core::drift_moves<D>(positions, level, spec.seed, /*step=*/0,
                                fraction);
  }
  util::Xoshiro256pp rng(util::substream_seed(spec.seed, 0xD14Aull));
  const std::int64_t side = std::int64_t{1} << level;
  std::unordered_set<std::uint64_t> occupied;
  occupied.reserve(n * 2);
  for (const Point<D>& p : positions) occupied.insert(pack(p, level));
  std::unordered_set<std::uint32_t> used;
  switch (spec.pattern) {
    case MovePattern::kDrift:
      break;  // handled above
    case MovePattern::kTeleport: {
      for (std::uint32_t k = 0; k < spec.count; ++k) {
        const auto i = static_cast<std::uint32_t>(util::bounded_u64(rng, n));
        Point<D> to{};
        for (int d = 0; d < D; ++d) {
          to[d] = static_cast<std::uint32_t>(
              util::bounded_u64(rng, static_cast<std::uint64_t>(side)));
        }
        if (used.count(i) != 0) continue;
        if (!occupied.insert(pack(to, level)).second) continue;
        occupied.erase(pack(positions[i], level));
        used.insert(i);
        moves.push_back({i, to});
      }
      break;
    }
    case MovePattern::kSwap: {
      // Each accepted pair exchanges cells: the batch's final cells are
      // a permutation of current ones, valid only because all movers
      // vacate before any fills.
      for (std::uint32_t k = 0; k < spec.count; ++k) {
        const auto i = static_cast<std::uint32_t>(util::bounded_u64(rng, n));
        const auto j = static_cast<std::uint32_t>(util::bounded_u64(rng, n));
        if (i == j || used.count(i) != 0 || used.count(j) != 0) continue;
        used.insert(i);
        used.insert(j);
        moves.push_back({i, positions[j]});
        moves.push_back({j, positions[i]});
      }
      break;
    }
    case MovePattern::kChurn: {
      // A one-cell step chosen to cross the particle's parent-cell
      // boundary, so the touched ancestor chains extend past the finest
      // level — the regime where stale owner caching would show.
      for (std::uint32_t k = 0; k < spec.count; ++k) {
        const auto i = static_cast<std::uint32_t>(util::bounded_u64(rng, n));
        const auto d = static_cast<int>(util::bounded_u64(rng, D));
        const Point<D>& p = positions[i];
        const std::int64_t o = (p[d] & 1u) ? 1 : -1;
        const std::int64_t v = static_cast<std::int64_t>(p[d]) + o;
        if (v < 0 || v >= side) continue;
        Point<D> to = p;
        to[d] = static_cast<std::uint32_t>(v);
        if (used.count(i) != 0) continue;
        if (!occupied.insert(pack(to, level)).second) continue;
        occupied.erase(pack(p, level));
        used.insert(i);
        moves.push_back({i, to});
      }
      break;
    }
  }
  return moves;
}

Gen<BatchSpec> batch_spec(std::uint32_t max_count) {
  return Gen<BatchSpec>{
      [max_count](Rand& r) {
        BatchSpec b;
        b.pattern = static_cast<MovePattern>(r.below(4));
        b.seed = r.below(1u << 20);
        b.count = static_cast<std::uint32_t>(r.between(1, max_count));
        return b;
      },
      [](const BatchSpec& b, std::vector<BatchSpec>& out) {
        std::vector<std::uint32_t> cands;
        shrink_integral_toward<std::uint32_t>(1, b.count, cands);
        for (const std::uint32_t c : cands) {
          out.push_back({b.pattern, b.seed, c});
        }
        // Simplify the dynamics: every pattern shrinks toward drift.
        if (b.pattern != MovePattern::kDrift) {
          out.push_back({MovePattern::kDrift, b.seed, b.count});
        }
        std::vector<std::uint64_t> seeds;
        shrink_integral_toward<std::uint64_t>(0, b.seed, seeds);
        for (const std::uint64_t s : seeds) {
          out.push_back({b.pattern, s, b.count});
        }
      }};
}

// ------------------------------------------------------------- case shape

/// One complete trajectory: an ACD instance plus a batch sequence.
struct DynCase {
  unsigned level = 2;
  std::vector<Point2> pts;
  CurveKind curve = CurveKind::kHilbert;
  TopoCase topo;
  unsigned radius = 1;
  fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev;
  std::vector<BatchSpec> batches;
};

std::ostream& operator<<(std::ostream& os, const DynCase& c) {
  os << "{level=" << c.level << ", n=" << c.pts.size() << ", curve="
     << curve_name(c.curve) << ", topo="
     << detail::Printer<TopoCase>::print(c.topo) << ", radius=" << c.radius
     << ", norm="
     << (c.norm == fmm::NeighborNorm::kChebyshev ? "chebyshev" : "manhattan")
     << ", batches=[";
  for (std::size_t i = 0; i < c.batches.size(); ++i) {
    os << (i ? " " : "") << c.batches[i];
  }
  return os << "], pts="
            << detail::Printer<std::vector<Point2>>::print(c.pts) << "}";
}

Gen<DynCase> dyn_case(topo::Rank max_procs) {
  const Gen<TopoCase> tc = topology_case(max_procs);
  const Gen<CurveKind> ck = any_curve2();
  const Gen<BatchSpec> bs = batch_spec(24);
  return Gen<DynCase>{
      [tc, ck, bs](Rand& r) {
        DynCase c;
        c.level = static_cast<unsigned>(r.between(2, 5));
        const std::uint64_t cells = grid_size<2>(c.level);
        const std::size_t max_n =
            static_cast<std::size_t>(std::min<std::uint64_t>(64, cells / 2));
        c.pts = distinct_points<2>(c.level, 2, max_n).sample(r);
        c.curve = ck.sample(r);
        c.topo = tc.sample(r);
        c.radius = static_cast<unsigned>(r.below(3));
        c.norm = r.coin() ? fmm::NeighborNorm::kChebyshev
                          : fmm::NeighborNorm::kManhattan;
        const std::size_t nb = r.between(1, 4);
        for (std::size_t i = 0; i < nb; ++i) {
          c.batches.push_back(bs.sample(r));
        }
        return c;
      },
      [tc, ck, bs](const DynCase& c, std::vector<DynCase>& out) {
        // Trajectory shrinks first: fewer batches isolate the offending
        // step, then per-batch shrinks isolate the offending move.
        if (c.batches.size() > 1) {
          for (const std::size_t keep :
               {std::size_t{1}, c.batches.size() / 2, c.batches.size() - 1}) {
            if (keep == 0 || keep >= c.batches.size()) continue;
            DynCase smaller = c;
            smaller.batches.assign(c.batches.begin(),
                                   c.batches.begin() + keep);
            out.push_back(std::move(smaller));
          }
        }
        for (std::size_t i = 0; i < c.batches.size(); ++i) {
          for (const BatchSpec& b : bs.shrinks(c.batches[i])) {
            DynCase smaller = c;
            smaller.batches[i] = b;
            out.push_back(std::move(smaller));
          }
        }
        std::vector<std::vector<Point2>> pcands;
        distinct_points<2>(c.level, 2, c.pts.size()).shrink(c.pts, pcands);
        for (auto& pts : pcands) {
          DynCase smaller = c;
          smaller.pts = std::move(pts);
          out.push_back(std::move(smaller));
        }
        for (const TopoCase& t : tc.shrinks(c.topo)) {
          DynCase smaller = c;
          smaller.topo = t;
          out.push_back(std::move(smaller));
        }
        std::vector<unsigned> rads;
        shrink_integral_toward<unsigned>(0, c.radius, rads);
        for (const unsigned rr : rads) {
          DynCase smaller = c;
          smaller.radius = rr;
          out.push_back(std::move(smaller));
        }
        for (const CurveKind k : ck.shrinks(c.curve)) {
          DynCase smaller = c;
          smaller.curve = k;
          out.push_back(std::move(smaller));
        }
      }};
}

util::ThreadPool& shared_pool() {
  static util::ThreadPool pool(4);
  return pool;
}

std::string show(const core::CommTotals& t) {
  return "{hops=" + std::to_string(t.hops) +
         ", count=" + std::to_string(t.count) + "}";
}

std::optional<std::string> expect_totals(const core::CommTotals& got,
                                         const core::CommTotals& want,
                                         const std::string& what) {
  if (got == want) return std::nullopt;
  return what + ": " + show(got) + " != oracle " + show(want);
}

std::optional<std::string> expect_ffi(const fmm::FfiTotals& got,
                                      const fmm::FfiTotals& want,
                                      const std::string& what) {
  if (auto err =
          expect_totals(got.interpolation, want.interpolation, what)) {
    return "interpolation " + *err;
  }
  if (auto err =
          expect_totals(got.anterpolation, want.anterpolation, what)) {
    return "anterpolation " + *err;
  }
  if (auto err = expect_totals(got.interaction, want.interaction, what)) {
    return "interaction " + *err;
  }
  return std::nullopt;
}

/// Drive one engine through the case's trajectory, comparing against the
/// brute-force oracles after every batch.
template <int D>
std::optional<std::string> run_against_oracle(
    core::DynamicAcd<D>& dyn, const topo::Topology& net, unsigned level,
    unsigned radius, fmm::NeighborNorm norm,
    const std::vector<BatchSpec>& batches, util::ThreadPool* pool) {
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const auto moves = resolve_batch<D>(batches[b], dyn.particles(), level);
    dyn.move_particles(moves, pool);
    const oracle::FrozenTotals want = oracle::frozen_totals<D>(
        dyn.particles(), level, dyn.partition(), net, radius, norm);
    const std::string at = "batch " + std::to_string(b) + " (" +
                           std::to_string(moves.size()) + " moves) NFI";
    if (auto err = expect_totals(dyn.nfi(net), want.nfi, at)) return err;
    if (auto err = expect_ffi(dyn.ffi(net), want.ffi,
                              "batch " + std::to_string(b) + " FFI")) {
      return err;
    }
  }
  return std::nullopt;
}

// ------------------------------------------------- the headline differential

TEST(DynamicsDiff, IncrementalMatchesFullRecomputeAfterEveryBatch) {
  SFCACD_PBT_CHECK(
      dyn_case(32), [](const DynCase& c) -> std::optional<std::string> {
        const auto curve = make_curve<2>(c.curve);
        const auto net = c.topo.make();
        core::DynamicAcd<2>::Options opts;
        opts.radius = c.radius;
        opts.norm = c.norm;
        opts.repartition_threshold = 2.0;  // frozen assignment throughout
        core::DynamicAcd<2> dyn(c.pts, c.level, *curve, c.topo.procs, opts);
        return run_against_oracle<2>(dyn, *net, c.level, c.radius, c.norm,
                                     c.batches, nullptr);
      });
}

TEST(DynamicsDiff, LazyRepartitionPreservesTotals) {
  // Threshold 0: any displaced particle triggers a re-sort + rebuild
  // mid-trajectory. The rebuilt state must still price the (now
  // re-frozen) assignment exactly as the oracles do.
  SFCACD_PBT_CHECK_CFG(
      dyn_case(32), CheckConfig{}.scaled(0.5),
      [](const DynCase& c) -> std::optional<std::string> {
        const auto curve = make_curve<2>(c.curve);
        const auto net = c.topo.make();
        core::DynamicAcd<2>::Options opts;
        opts.radius = c.radius;
        opts.norm = c.norm;
        opts.repartition_threshold = 0.0;
        core::DynamicAcd<2> dyn(c.pts, c.level, *curve, c.topo.procs, opts);
        return run_against_oracle<2>(dyn, *net, c.level, c.radius, c.norm,
                                     c.batches, nullptr);
      });
}

TEST(DynamicsDiff, ThreadedBatchesMatchSerialBitIdentically) {
  SFCACD_PBT_CHECK_CFG(
      dyn_case(32), CheckConfig{}.scaled(0.5),
      [](const DynCase& c) -> std::optional<std::string> {
        const auto curve = make_curve<2>(c.curve);
        const auto net = c.topo.make();
        core::DynamicAcd<2>::Options opts;
        opts.radius = c.radius;
        opts.norm = c.norm;
        opts.repartition_threshold = 2.0;
        core::DynamicAcd<2> serial(c.pts, c.level, *curve, c.topo.procs,
                                   opts);
        core::DynamicAcd<2> threaded(c.pts, c.level, *curve, c.topo.procs,
                                     opts, &shared_pool());
        for (std::size_t b = 0; b < c.batches.size(); ++b) {
          const auto moves =
              resolve_batch<2>(c.batches[b], serial.particles(), c.level);
          serial.move_particles(moves, nullptr);
          threaded.move_particles(moves, &shared_pool());
          if (auto err = expect_totals(threaded.nfi(*net), serial.nfi(*net),
                                       "batch " + std::to_string(b) +
                                           " threaded NFI vs serial")) {
            return err;
          }
          if (auto err = expect_ffi(threaded.ffi(*net), serial.ffi(*net),
                                    "batch " + std::to_string(b) +
                                        " threaded FFI vs serial")) {
            return err;
          }
        }
        return std::nullopt;
      });
}

// ----------------------------------------------------------- 3-D coverage

struct DynCase3 {
  unsigned level = 2;
  std::vector<Point3> pts;
  CurveKind curve = CurveKind::kHilbert;
  TopoCase topo;  // interconnects are rank graphs: dimension-free
  std::vector<BatchSpec> batches;
};

std::ostream& operator<<(std::ostream& os, const DynCase3& c) {
  os << "{level=" << c.level << ", n=" << c.pts.size() << ", curve="
     << curve_name(c.curve) << ", topo="
     << detail::Printer<TopoCase>::print(c.topo) << ", batches=[";
  for (std::size_t i = 0; i < c.batches.size(); ++i) {
    os << (i ? " " : "") << c.batches[i];
  }
  return os << "], pts="
            << detail::Printer<std::vector<Point3>>::print(c.pts) << "}";
}

Gen<DynCase3> dyn_case3(topo::Rank max_procs) {
  const Gen<TopoCase> tc = topology_case(max_procs);
  const Gen<CurveKind> ck = any_curve3();
  const Gen<BatchSpec> bs = batch_spec(12);
  return Gen<DynCase3>{
      [tc, ck, bs](Rand& r) {
        DynCase3 c;
        c.level = static_cast<unsigned>(r.between(2, 3));
        const std::uint64_t cells = grid_size<3>(c.level);
        const std::size_t max_n =
            static_cast<std::size_t>(std::min<std::uint64_t>(48, cells / 2));
        c.pts = distinct_points<3>(c.level, 2, max_n).sample(r);
        c.curve = ck.sample(r);
        c.topo = tc.sample(r);
        const std::size_t nb = r.between(1, 3);
        for (std::size_t i = 0; i < nb; ++i) {
          c.batches.push_back(bs.sample(r));
        }
        return c;
      },
      [tc, ck, bs](const DynCase3& c, std::vector<DynCase3>& out) {
        if (c.batches.size() > 1) {
          DynCase3 smaller = c;
          smaller.batches.assign(c.batches.begin(), c.batches.begin() + 1);
          out.push_back(std::move(smaller));
        }
        for (std::size_t i = 0; i < c.batches.size(); ++i) {
          for (const BatchSpec& b : bs.shrinks(c.batches[i])) {
            DynCase3 smaller = c;
            smaller.batches[i] = b;
            out.push_back(std::move(smaller));
          }
        }
        std::vector<std::vector<Point3>> pcands;
        distinct_points<3>(c.level, 2, c.pts.size()).shrink(c.pts, pcands);
        for (auto& pts : pcands) {
          DynCase3 smaller = c;
          smaller.pts = std::move(pts);
          out.push_back(std::move(smaller));
        }
        for (const TopoCase& t : tc.shrinks(c.topo)) {
          DynCase3 smaller = c;
          smaller.topo = t;
          out.push_back(std::move(smaller));
        }
      }};
}

TEST(DynamicsDiff, ThreeDimensionalTrajectoriesMatchOracles) {
  SFCACD_PBT_CHECK_CFG(
      dyn_case3(16), CheckConfig{}.scaled(0.5),
      [](const DynCase3& c) -> std::optional<std::string> {
        const auto curve = make_curve<3>(c.curve);
        const auto net = c.topo.make();
        core::DynamicAcd<3>::Options opts;
        opts.repartition_threshold = 2.0;
        core::DynamicAcd<3> dyn(c.pts, c.level, *curve, c.topo.procs, opts);
        return run_against_oracle<3>(dyn, *net, c.level, opts.radius,
                                     opts.norm, c.batches, nullptr);
      });
}

// ------------------------------------------- injected-bug acceptance test

/// A deliberately narrow case for the fault-injection self-test: fixed
/// level/curve/topology so the shrunk counterexample is readable, and a
/// deterministic batch — the first `count` particles (in the engine's
/// sorted order) each step one cell in +x — so shrinking `count` drops
/// trailing moves without re-rolling the whole trajectory. The injected
/// fault targets the batch's *first* mover, so `count = 1` isolates it.
struct FaultCase {
  std::vector<Point2> pts;
  std::uint32_t count = 1;
};

std::ostream& operator<<(std::ostream& os, const FaultCase& c) {
  return os << "{n=" << c.pts.size() << ", count=" << c.count << ", pts="
            << detail::Printer<std::vector<Point2>>::print(c.pts) << "}";
}

constexpr unsigned kFaultLevel = 3;

Gen<FaultCase> fault_case() {
  return Gen<FaultCase>{
      [](Rand& r) {
        FaultCase c;
        c.pts = distinct_points<2>(kFaultLevel, 2, 24).sample(r);
        c.count = static_cast<std::uint32_t>(r.between(1, 8));
        return c;
      },
      [](const FaultCase& c, std::vector<FaultCase>& out) {
        std::vector<std::vector<Point2>> pcands;
        distinct_points<2>(kFaultLevel, 2, c.pts.size()).shrink(c.pts, pcands);
        for (auto& pts : pcands) out.push_back({std::move(pts), c.count});
        std::vector<std::uint32_t> cands;
        shrink_integral_toward<std::uint32_t>(1, c.count, cands);
        for (const std::uint32_t k : cands) out.push_back({c.pts, k});
      }};
}

/// The first min(count, n) particles each attempt one step in +x;
/// off-grid or occupied targets are skipped (evolving occupancy, like
/// every other batch builder here).
std::vector<core::ParticleMove<2>> march_moves(
    const std::vector<Point2>& positions, std::uint32_t count) {
  const std::int64_t side = std::int64_t{1} << kFaultLevel;
  std::unordered_set<std::uint64_t> occupied;
  for (const Point2& p : positions) occupied.insert(pack(p, kFaultLevel));
  std::vector<core::ParticleMove<2>> moves;
  const auto n = static_cast<std::uint32_t>(positions.size());
  for (std::uint32_t i = 0; i < count && i < n; ++i) {
    const Point2& p = positions[i];
    if (static_cast<std::int64_t>(p[0]) + 1 >= side) continue;
    Point2 to = p;
    ++to[0];
    if (!occupied.insert(pack(to, kFaultLevel)).second) continue;
    occupied.erase(pack(p, kFaultLevel));
    moves.push_back({i, to});
  }
  return moves;
}

std::optional<std::string> fault_differential(const FaultCase& c,
                                              bool inject) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kRing, 4,
                                          curve.get());
  core::DynamicAcd<2>::Options opts;
  opts.radius = 1;
  opts.repartition_threshold = 2.0;
  opts.fault_stale_subtraction = inject;
  core::DynamicAcd<2> dyn(c.pts, kFaultLevel, *curve, 4, opts);
  const auto moves = march_moves(dyn.particles(), c.count);
  dyn.move_particles(moves);
  const core::CommTotals want = oracle::nfi_pairwise<2>(
      dyn.particles(), dyn.partition(), *net, opts.radius, opts.norm);
  return expect_totals(dyn.nfi(*net), want,
                       std::to_string(moves.size()) + "-move batch NFI");
}

TEST(DynamicsInjectedBug, CorrectEngineSurvivesTheSameTrajectories) {
  const CheckConfig cfg{.iterations = 300, .seed = 0xd1f};
  const CheckOutcome out = check(
      fault_case(),
      [](const FaultCase& c) { return fault_differential(c, false); }, cfg);
  EXPECT_TRUE(out.ok) << out.message;
}

TEST(DynamicsInjectedBug, StaleSubtractionIsCaughtAndShrunkToOneMove) {
  // The acceptance criterion for the dynamics harness: an engine that
  // "forgets" to retract the first mover's outgoing near-field events —
  // the classic stale-subtraction bug an incremental path can hide —
  // must be detected by the differential, and the shrinker must reduce
  // the trajectory to a single move of a two-particle configuration.
  const CheckConfig cfg{.iterations = 300, .seed = 0xd1f};
  const CheckOutcome out = check(
      fault_case(),
      [](const FaultCase& c) { return fault_differential(c, true); }, cfg);
  ASSERT_FALSE(out.ok);
  EXPECT_GT(out.shrink_improvements, 0u);
  EXPECT_NE(out.counterexample.find("n=2"), std::string::npos)
      << out.counterexample;
  EXPECT_NE(out.counterexample.find("count=1"), std::string::npos)
      << out.counterexample;
  EXPECT_NE(out.message.find("replay: SFCACD_PBT_SEED=0xd1f"),
            std::string::npos)
      << out.message;
}

}  // namespace
}  // namespace sfc::pbt
