// Interaction-list tests, including an exact reproduction of the two
// examples in the paper's Figure 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "fmm/cells.hpp"

namespace sfc::fmm {
namespace {

std::set<std::uint64_t> il_keys(const Point2& cell, unsigned level) {
  std::vector<Point2> out;
  interaction_list(cell, level, out);
  std::set<std::uint64_t> keys;
  for (const auto& c : out) keys.insert(pack(c, level));
  return keys;
}

/// Figure 4(a) labels the 4x4 grid row-major from the top-left corner; our
/// coordinates put y=0 at the bottom, so label L sits at
/// (x, y) = (L % 4, 3 - L / 4).
Point2 fig4_cell(unsigned label) {
  return make_point(label % 4, 3 - label / 4);
}

std::set<std::uint64_t> fig4_keys(std::initializer_list<unsigned> labels) {
  std::set<std::uint64_t> keys;
  for (const unsigned l : labels) keys.insert(pack(fig4_cell(l), 2));
  return keys;
}

TEST(InteractionListFig4, Node0MatchesPaper) {
  // "the interaction list of node 0 is {2,3,6,7,8-16}, or every node that
  // is not in its quadrant" (the paper's 16 is a typo for 15).
  EXPECT_EQ(il_keys(fig4_cell(0), 2),
            fig4_keys({2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(InteractionListFig4, Node6MatchesPaper) {
  // "the interaction list of node 6 is {0, 4, 8, 12, 13, 14, 15}".
  EXPECT_EQ(il_keys(fig4_cell(6), 2), fig4_keys({0, 4, 8, 12, 13, 14, 15}));
}

TEST(InteractionListFig4, CornerNodesSeeWholeComplementOfQuadrant) {
  // Every corner cell of the 4x4 grid has all its adjacent cells inside its
  // own quadrant, so its IL is the full 12-cell complement.
  for (const unsigned corner : {0u, 3u, 12u, 15u}) {
    EXPECT_EQ(il_keys(fig4_cell(corner), 2).size(), 12u) << corner;
  }
}

TEST(InteractionList, EmptyAtLevelsZeroAndOne) {
  std::vector<Point2> out;
  interaction_list(make_point(0, 0), 0, out);
  EXPECT_TRUE(out.empty());
  interaction_list(make_point(1, 0), 1, out);
  EXPECT_TRUE(out.empty());
}

TEST(InteractionList, NeverContainsSelfOrAdjacentCells) {
  for (unsigned level : {2u, 3u, 4u}) {
    const std::uint32_t side = 1u << level;
    std::vector<Point2> out;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const Point2 c = make_point(x, y);
        interaction_list(c, level, out);
        for (const auto& d : out) {
          ASSERT_GT(chebyshev(c, d), 1u)
              << "level " << level << " cell " << to_string(c);
          ASSERT_TRUE(in_grid(d, level));
        }
      }
    }
  }
}

TEST(InteractionList, AtMost27CellsIn2D) {
  for (unsigned level : {2u, 3u, 4u, 5u}) {
    const std::uint32_t side = 1u << level;
    std::vector<Point2> out;
    std::size_t max_size = 0;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        interaction_list(make_point(x, y), level, out);
        max_size = std::max(max_size, out.size());
      }
    }
    EXPECT_LE(max_size, 27u) << "level " << level;
    if (level >= 3) {
      EXPECT_EQ(max_size, 27u) << "level " << level;
    }
  }
}

TEST(InteractionList, IsSymmetric) {
  // d in IL(c) <=> c in IL(d): both conditions — same level, children of
  // parent's neighbors, non-adjacent — are symmetric.
  constexpr unsigned kLevel = 4;
  const std::uint32_t side = 1u << kLevel;
  std::vector<Point2> out;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const Point2 c = make_point(x, y);
      interaction_list(c, kLevel, out);
      const std::vector<Point2> ilc = out;
      for (const auto& d : ilc) {
        interaction_list(d, kLevel, out);
        ASSERT_NE(std::find(out.begin(), out.end(), c), out.end())
            << to_string(c) << " in IL(" << to_string(d) << ")";
      }
    }
  }
}

TEST(InteractionList, MembersAreChildrenOfParentsNeighbors) {
  constexpr unsigned kLevel = 3;
  const std::uint32_t side = 1u << kLevel;
  std::vector<Point2> out, pn;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const Point2 c = make_point(x, y);
      interaction_list(c, kLevel, out);
      neighbors(parent_cell(c), kLevel - 1, pn);
      for (const auto& d : out) {
        ASSERT_NE(std::find(pn.begin(), pn.end(), parent_cell(d)), pn.end());
      }
    }
  }
}

TEST(InteractionList, ThreeDBoundedBy189) {
  std::vector<Point3> out;
  std::size_t max_size = 0;
  const std::uint32_t side = 8;
  for (std::uint32_t z = 0; z < side; ++z) {
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        interaction_list(make_point(x, y, z), 3, out);
        max_size = std::max(max_size, out.size());
      }
    }
  }
  EXPECT_LE(max_size, 189u);
  EXPECT_EQ(max_size, 189u);  // attained by interior cells at level 3
}

}  // namespace
}  // namespace sfc::fmm
