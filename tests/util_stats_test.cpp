// Unit tests for the streaming statistics accumulator.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sfc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256pp rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = uniform01(rng) * 100 - 50;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Xoshiro256pp rng(4);
  NormalSampler normal;
  for (int i = 0; i < 10; ++i) small.add(normal(rng));
  for (int i = 0; i < 1000; ++i) large.add(normal(rng));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 / std::sqrt(1000.0), 0.02);
}

}  // namespace
}  // namespace sfc::util
