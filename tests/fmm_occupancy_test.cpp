// Occupancy grid tests, covering both the dense-array and hash-map
// storage policies.
#include "fmm/occupancy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sfc::fmm {
namespace {

TEST(Occupancy, FindsEveryParticle) {
  std::vector<Point2> particles = {make_point(0, 0), make_point(5, 3),
                                   make_point(7, 7), make_point(1, 6)};
  const OccupancyGrid<2> grid(particles, 3);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_EQ(grid.particle_at(particles[i]), static_cast<std::int32_t>(i));
  }
}

TEST(Occupancy, EmptyCellsReportEmpty) {
  std::vector<Point2> particles = {make_point(2, 2)};
  const OccupancyGrid<2> grid(particles, 3);
  EXPECT_EQ(grid.particle_at(make_point(0, 0)), OccupancyGrid<2>::kEmpty);
  EXPECT_EQ(grid.particle_at(make_point(7, 7)), OccupancyGrid<2>::kEmpty);
  EXPECT_EQ(grid.particle_at(make_point(2, 3)), OccupancyGrid<2>::kEmpty);
}

TEST(Occupancy, NoParticlesAtAll) {
  const std::vector<Point2> particles;
  const OccupancyGrid<2> grid(particles, 4);
  EXPECT_EQ(grid.particle_at(make_point(3, 3)), OccupancyGrid<2>::kEmpty);
}

TEST(Occupancy, SparseStorageBeyondDenseThreshold) {
  // level 14 in 2-D = 2^28 cells > 2^26: exercises the hash-map path.
  std::vector<Point2> particles = {make_point(0, 0), make_point(16383, 16383),
                                   make_point(12345, 999)};
  const OccupancyGrid<2> grid(particles, 14);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_EQ(grid.particle_at(particles[i]), static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(grid.particle_at(make_point(1, 1)), OccupancyGrid<2>::kEmpty);
}

TEST(Occupancy, DenseAndSparseAgree) {
  // Build the same particle set at a level served densely (8) and compare
  // with a sparse grid at a level that forces hashing (14 in 3-D).
  std::vector<Point3> particles;
  for (std::uint32_t i = 0; i < 50; ++i) {
    particles.push_back(make_point(i, (i * 7) % 256, (i * 13) % 256));
  }
  const OccupancyGrid<3> dense(particles, 8);   // 2^24 cells: dense
  const OccupancyGrid<3> sparse(particles, 10);  // 2^30 cells: sparse
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_EQ(dense.particle_at(particles[i]), static_cast<std::int32_t>(i));
    EXPECT_EQ(sparse.particle_at(particles[i]), static_cast<std::int32_t>(i));
  }
}

TEST(Occupancy, LevelAccessor) {
  const std::vector<Point2> particles = {make_point(1, 1)};
  const OccupancyGrid<2> grid(particles, 5);
  EXPECT_EQ(grid.level(), 5u);
}

}  // namespace
}  // namespace sfc::fmm
