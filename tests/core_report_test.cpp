// Report-builder tests: table shapes/labels per study and file export.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sfc::core {
namespace {

CombinationStudyConfig tiny_combination() {
  CombinationStudyConfig cfg;
  cfg.particles = 300;
  cfg.level = 5;
  cfg.procs = 16;
  cfg.seed = 3;
  cfg.distributions = {dist::DistKind::kUniform};
  cfg.curves = {CurveKind::kHilbert, CurveKind::kRowMajor};
  return cfg;
}

TEST(Report, CombinationTableLayout) {
  const auto result = run_combination_study(tiny_combination());
  const auto table = combination_table(result, 0, /*far_field=*/false);
  const std::string csv = table.to_string(util::TableStyle::kCsv);
  EXPECT_NE(csv.find("Processor Order v,Hilbert,Row-Major"),
            std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_NE(table.title().find("Uniform"), std::string::npos);
  EXPECT_NE(table.title().find("NFI"), std::string::npos);
  EXPECT_NE(combination_table(result, 0, true).title().find("FFI"),
            std::string::npos);
}

TEST(Report, TopologyTableLayout) {
  TopologyStudyConfig cfg;
  cfg.particles = 300;
  cfg.level = 5;
  cfg.procs = 16;
  cfg.seed = 3;
  cfg.topologies = {topo::TopologyKind::kBus, topo::TopologyKind::kTorus};
  cfg.curves = {CurveKind::kHilbert};
  const auto result = run_topology_study(cfg);
  const auto table = topology_table(result, false);
  const std::string csv = table.to_string(util::TableStyle::kCsv);
  EXPECT_NE(csv.find("Bus,"), std::string::npos);
  EXPECT_NE(csv.find("Torus,"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, ScalingTableLayout) {
  ScalingStudyConfig cfg;
  cfg.particles = 300;
  cfg.level = 5;
  cfg.proc_counts = {4, 16};
  cfg.seed = 3;
  cfg.curves = {CurveKind::kMorton};
  const auto result = run_scaling_study(cfg);
  const auto table = scaling_table(result, true);
  const std::string csv = table.to_string(util::TableStyle::kCsv);
  EXPECT_NE(csv.find("p=4,"), std::string::npos);
  EXPECT_NE(csv.find("p=16,"), std::string::npos);
}

TEST(Report, AnnsTableLayout) {
  AnnsStudyConfig cfg;
  cfg.levels = {2, 3};
  cfg.curves = {CurveKind::kHilbert, CurveKind::kMorton};
  const auto result = run_anns_study(cfg);
  const auto avg = anns_table(result, false);
  const auto max = anns_table(result, true);
  EXPECT_NE(avg.to_string(util::TableStyle::kCsv).find("4x4,"),
            std::string::npos);
  EXPECT_NE(avg.to_string(util::TableStyle::kCsv).find("8x8,"),
            std::string::npos);
  EXPECT_NE(max.title().find("maximum"), std::string::npos);
}

TEST(Report, WriteFileRoundTrips) {
  AnnsStudyConfig cfg;
  cfg.levels = {2};
  cfg.curves = {CurveKind::kGray};
  const auto table = anns_table(run_anns_study(cfg));
  const std::string path = "/tmp/sfcacd_report_test.csv";
  write_file(path, table);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(), table.to_string(util::TableStyle::kCsv));
  std::remove(path.c_str());
}

TEST(Report, WriteFileToBadPathThrows) {
  util::Table table;
  EXPECT_THROW(write_file("/nonexistent-dir/x.csv", table),
               std::runtime_error);
}

}  // namespace
}  // namespace sfc::core
