// Cost-model tests: hand-computed alpha-beta costs and monotonicity in
// the model parameters.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace sfc::core {
namespace {

TEST(CostModel, HandComputedMessageSet) {
  CommTotals totals;
  totals.count = 10;
  totals.hops = 25;
  CostParams params;
  params.alpha_us = 2.0;
  params.per_hop_us = 0.5;
  params.bandwidth_bytes_per_us = 100.0;
  // 10 * 2.0 + 25 * 0.5 + 10 * 50 / 100 = 20 + 12.5 + 5 = 37.5
  EXPECT_DOUBLE_EQ(communication_cost_us(totals, 50, params), 37.5);
}

TEST(CostModel, EmptySetCostsNothing) {
  EXPECT_DOUBLE_EQ(communication_cost_us(CommTotals{}, 64, CostParams{}),
                   0.0);
}

TEST(CostModel, ExpansionBytesTrackTerms) {
  CostParams params;
  params.expansion_terms = 12;
  EXPECT_EQ(params.expansion_bytes(), 13u * 16u);
  params.expansion_terms = 4;
  EXPECT_EQ(params.expansion_bytes(), 5u * 16u);
}

TEST(CostModel, FmmEstimateSplitsComponents) {
  CommTotals nfi;
  nfi.count = 100;
  nfi.hops = 200;
  fmm::FfiTotals ffi;
  ffi.interpolation = {50, 20};
  ffi.anterpolation = {50, 20};
  ffi.interaction = {300, 60};
  CostParams params;

  const auto est = fmm_cost_estimate(nfi, ffi, params);
  EXPECT_GT(est.nfi_us, 0.0);
  EXPECT_GT(est.ffi_us, 0.0);
  EXPECT_DOUBLE_EQ(est.total_us(), est.nfi_us + est.ffi_us);
  EXPECT_DOUBLE_EQ(
      est.nfi_us, communication_cost_us(nfi, params.particle_bytes, params));
  EXPECT_DOUBLE_EQ(est.ffi_us,
                   communication_cost_us(ffi.total(),
                                         params.expansion_bytes(), params));
}

TEST(CostModel, HigherOrderExpansionsCostMore) {
  fmm::FfiTotals ffi;
  ffi.interaction = {1000, 100};
  CostParams low;
  low.expansion_terms = 4;
  CostParams high;
  high.expansion_terms = 20;
  const CommTotals nfi{};
  EXPECT_LT(fmm_cost_estimate(nfi, ffi, low).ffi_us,
            fmm_cost_estimate(nfi, ffi, high).ffi_us);
}

TEST(CostModel, PerHopTermScalesWithAcd) {
  // Two sets with equal counts: the one with more hops costs more — the
  // mechanism by which a better SFC translates into saved microseconds.
  CommTotals near, far;
  near.count = far.count = 1000;
  near.hops = 1000;
  far.hops = 10000;
  CostParams params;
  EXPECT_LT(communication_cost_us(near, 32, params),
            communication_cost_us(far, 32, params));
}

}  // namespace
}  // namespace sfc::core
