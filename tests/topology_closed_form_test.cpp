// Closed-form hop distances validated exhaustively against the BFS oracle
// on explicit interconnect graphs, plus metric-space sanity properties.
#include <gtest/gtest.h>

#include <memory>

#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear.hpp"
#include "topology/tree.hpp"

namespace sfc::topo {
namespace {

void expect_matches_oracle(const Topology& topo, const GraphTopology& oracle) {
  ASSERT_EQ(topo.size(), oracle.size());
  for (Rank a = 0; a < topo.size(); ++a) {
    for (Rank b = 0; b < topo.size(); ++b) {
      ASSERT_EQ(topo.distance(a, b), oracle.distance(a, b))
          << topo.name() << " p=" << topo.size() << " (" << a << "," << b
          << ")";
    }
  }
}

void expect_metric_properties(const Topology& topo) {
  const Rank p = topo.size();
  std::uint64_t max_seen = 0;
  for (Rank a = 0; a < p; ++a) {
    ASSERT_EQ(topo.distance(a, a), 0u) << topo.name();
    for (Rank b = 0; b < p; ++b) {
      const auto d = topo.distance(a, b);
      ASSERT_EQ(d, topo.distance(b, a)) << topo.name() << " symmetry";
      if (a != b) {
        ASSERT_GE(d, 1u) << topo.name() << " separation";
      }
      max_seen = std::max(max_seen, d);
    }
  }
  EXPECT_EQ(max_seen, topo.diameter()) << topo.name() << " diameter";
  // Triangle inequality on a coarse sample.
  for (Rank a = 0; a < p; a += 3) {
    for (Rank b = 0; b < p; b += 5) {
      for (Rank c = 0; c < p; c += 7) {
        ASSERT_LE(topo.distance(a, c),
                  topo.distance(a, b) + topo.distance(b, c))
            << topo.name();
      }
    }
  }
}

class BusRingSize : public ::testing::TestWithParam<Rank> {};

TEST_P(BusRingSize, BusMatchesPathGraph) {
  const Rank p = GetParam();
  const BusTopology bus(p);
  expect_matches_oracle(bus, build_path_graph(p));
  expect_metric_properties(bus);
}

TEST_P(BusRingSize, RingMatchesRingGraph) {
  const Rank p = GetParam();
  const RingTopology ring(p);
  expect_matches_oracle(ring, build_ring_graph(p));
  expect_metric_properties(ring);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BusRingSize,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 33u));

class HypercubeSize : public ::testing::TestWithParam<Rank> {};

TEST_P(HypercubeSize, MatchesGraphOracle) {
  const Rank p = GetParam();
  const HypercubeTopology cube(p);
  expect_matches_oracle(cube, build_hypercube_graph(p));
  expect_metric_properties(cube);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HypercubeSize,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u, 128u));

TEST(Hypercube, RejectsNonPowerOfTwo) {
  EXPECT_THROW(HypercubeTopology(6), std::invalid_argument);
}

class QuadtreeSize : public ::testing::TestWithParam<Rank> {};

TEST_P(QuadtreeSize, MatchesGraphOracle) {
  const Rank p = GetParam();
  const TreeTopology tree(p, 4);
  expect_matches_oracle(tree, build_tree_graph(p, 4));
  expect_metric_properties(tree);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuadtreeSize,
                         ::testing::Values(1u, 4u, 16u, 64u, 256u));

TEST(Quadtree, BinaryTreeVariantMatchesOracle) {
  const TreeTopology tree(32, 2);
  expect_matches_oracle(tree, build_tree_graph(32, 2));
}

TEST(Quadtree, OctreeVariantMatchesOracle) {
  const TreeTopology tree(64, 8);
  expect_matches_oracle(tree, build_tree_graph(64, 8));
}

TEST(Quadtree, RejectsNonPowerSizes) {
  EXPECT_THROW(TreeTopology(8, 4), std::invalid_argument);
  EXPECT_THROW(TreeTopology(12, 4), std::invalid_argument);
}

TEST(Quadtree, SiblingsAreTwoHopsApart) {
  const TreeTopology tree(64, 4);
  EXPECT_EQ(tree.distance(0, 1), 2u);
  EXPECT_EQ(tree.distance(0, 3), 2u);
  // Cousins under different level-1 subtrees: up to the root and down.
  EXPECT_EQ(tree.distance(0, 63), 2u * tree.depth());
}

TEST(MeshTorus, MatchesGraphOracleForEveryRankingCurve) {
  // side 8 (level 3), 64 processors, every paper curve as ranking.
  for (const CurveKind kind : kPaperCurves) {
    const auto ranking = make_curve<2>(kind);
    const MeshTopology<2> mesh(3, *ranking);
    const TorusTopology<2> torus(3, *ranking);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> coords;
    for (Rank r = 0; r < 64; ++r) {
      const Point2 p = ranking->point(r, 3);
      coords.emplace_back(p[0], p[1]);
    }
    expect_matches_oracle(mesh, build_mesh_graph(8, coords, false));
    expect_matches_oracle(torus, build_mesh_graph(8, coords, true));
    expect_metric_properties(mesh);
    expect_metric_properties(torus);
  }
}

TEST(MeshTorus, TorusNeverExceedsMesh) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  const MeshTopology<2> mesh(4, *ranking);
  const TorusTopology<2> torus(4, *ranking);
  for (Rank a = 0; a < mesh.size(); a += 3) {
    for (Rank b = 0; b < mesh.size(); b += 5) {
      ASSERT_LE(torus.distance(a, b), mesh.distance(a, b));
    }
  }
}

TEST(Factory, BuildsEveryKind) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  for (const TopologyKind kind : kAllTopologies) {
    const auto topo = make_topology<2>(kind, 64, ranking.get());
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->kind(), kind);
    EXPECT_EQ(topo->size(), 64u);
  }
}

TEST(Factory, MeshRequiresRankingCurve) {
  EXPECT_THROW(make_topology<2>(TopologyKind::kMesh, 64, nullptr),
               std::invalid_argument);
}

TEST(Factory, MeshRequiresSquarePowerOfTwo) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  EXPECT_THROW(make_topology<2>(TopologyKind::kMesh, 32, ranking.get()),
               std::invalid_argument);
  EXPECT_THROW(make_topology<2>(TopologyKind::kTorus, 48, ranking.get()),
               std::invalid_argument);
}

TEST(Factory, ZeroProcessorsRejected) {
  EXPECT_THROW(make_topology<2>(TopologyKind::kBus, 0, nullptr),
               std::invalid_argument);
}

TEST(Factory, NamesRoundTripThroughParser) {
  for (const TopologyKind kind : kAllTopologies) {
    const auto parsed = parse_topology(topology_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(Factory, ThreeDimensionalMeshTorus) {
  const auto ranking = make_curve<3>(CurveKind::kHilbert);
  const auto mesh = make_topology<3>(TopologyKind::kMesh, 512, ranking.get());
  const auto torus =
      make_topology<3>(TopologyKind::kTorus, 512, ranking.get());
  EXPECT_EQ(mesh->size(), 512u);
  EXPECT_EQ(mesh->diameter(), 3u * 7u);
  EXPECT_EQ(torus->diameter(), 3u * 4u);
  expect_metric_properties(*mesh);
}

}  // namespace
}  // namespace sfc::topo
