// Far-field interaction model tests: cell-tree invariants and
// hand-computed interpolation/anterpolation/interaction totals.
#include "fmm/ffi.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fmm/cells.hpp"
#include "topology/linear.hpp"
#include "util/thread_pool.hpp"

namespace sfc::fmm {
namespace {

TEST(CellTree, SingleParticleChainsToRoot) {
  const std::vector<Point2> particles = {make_point(5, 2)};
  const CellTree<2> tree(particles, 3);
  EXPECT_EQ(tree.finest_level(), 3u);
  for (unsigned l = 0; l <= 3; ++l) {
    ASSERT_EQ(tree.cells(l).size(), 1u) << "level " << l;
    EXPECT_EQ(tree.cells(l)[0].min_particle, 0u);
  }
  EXPECT_EQ(tree.cells(3)[0].key, cell_key(make_point(5, 2)));
  EXPECT_EQ(tree.cells(0)[0].key, 0u);
  EXPECT_EQ(tree.total_cells(), 4u);
}

TEST(CellTree, ParentOfOccupiedCellIsOccupied) {
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 60; ++i) {
    particles.push_back(make_point((i * 11) % 16, (i * 5 + 2) % 16));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 4) < pack(b, 4);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  const CellTree<2> tree(particles, 4);
  for (unsigned l = 1; l <= 4; ++l) {
    for (const auto& cell : tree.cells(l)) {
      ASSERT_GE(tree.find(l - 1, parent_key<2>(cell.key)), 0)
          << "level " << l;
    }
  }
}

TEST(CellTree, MinParticlePropagatesUpward) {
  // Two particles: index order determines ownership everywhere above.
  const std::vector<Point2> particles = {make_point(3, 3), make_point(0, 0)};
  const CellTree<2> tree(particles, 2);
  // Root and both level-1 quadrants take the min index of their subtree.
  EXPECT_EQ(tree.cells(0)[0].min_particle, 0u);
  const auto ll = tree.find(1, cell_key(make_point(0, 0)));
  const auto ur = tree.find(1, cell_key(make_point(1, 1)));
  ASSERT_GE(ll, 0);
  ASSERT_GE(ur, 0);
  EXPECT_EQ(tree.cells(1)[static_cast<std::size_t>(ll)].min_particle, 1u);
  EXPECT_EQ(tree.cells(1)[static_cast<std::size_t>(ur)].min_particle, 0u);
}

TEST(CellTree, FindReturnsMinusOneForUnoccupied) {
  const std::vector<Point2> particles = {make_point(0, 0)};
  const CellTree<2> tree(particles, 2);
  EXPECT_LT(tree.find(2, cell_key(make_point(3, 3))), 0);
  EXPECT_GE(tree.find(2, cell_key(make_point(0, 0))), 0);
}

TEST(CellTree, LevelsSortedByKey) {
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 40; ++i) {
    particles.push_back(make_point((i * 13 + 3) % 32, (i * 29) % 32));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 5) < pack(b, 5);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  const CellTree<2> tree(particles, 5);
  for (unsigned l = 0; l <= 5; ++l) {
    const auto& cells = tree.cells(l);
    for (std::size_t i = 1; i < cells.size(); ++i) {
      ASSERT_LT(cells[i - 1].key, cells[i].key) << "level " << l;
    }
  }
}

TEST(CellTree, SparseFindFallbackBeyondDenseBudget) {
  // 2-D level 13 has 2^26 cells per level > the 2^24 dense budget, so the
  // finest level must fall back to binary search — and agree with the
  // dense path used at the coarser levels.
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 500; ++i) {
    particles.push_back(
        make_point((i * 524287u) % 8192, (i * 37123u + 11) % 8192));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 13) < pack(b, 13);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  const CellTree<2> tree(particles, 13);
  // Every stored cell must be findable at every level; a neighbor key
  // that is unoccupied must return -1.
  for (unsigned l = 0; l <= 13; ++l) {
    for (const auto& cell : tree.cells(l)) {
      const auto idx = tree.find(l, cell.key);
      ASSERT_GE(idx, 0) << "level " << l;
      ASSERT_EQ(tree.cells(l)[static_cast<std::size_t>(idx)].key, cell.key);
    }
  }
  EXPECT_LT(tree.find(13, cell_key(make_point(1, 0))), 0);
}

TEST(Ffi, TwoOppositeCornersHandComputed) {
  // Particles 0:(0,0), 1:(3,3) on a 4x4 grid, 2 bus processors.
  // Interpolation: level1: (0,0)->root hop 0, (1,1)->root hop 1;
  //                level2: both cells match their parent's owner, hop 0.
  // Interaction: at level 2 the two cells are in each other's ILs, 1 hop
  // each direction.
  const std::vector<Point2> particles = {make_point(0, 0), make_point(3, 3)};
  const CellTree<2> tree(particles, 2);
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  const auto totals = ffi_totals<2>(tree, part, bus);

  EXPECT_EQ(totals.interpolation.count, 4u);
  EXPECT_EQ(totals.interpolation.hops, 1u);
  EXPECT_EQ(totals.anterpolation.count, 4u);
  EXPECT_EQ(totals.anterpolation.hops, 1u);
  EXPECT_EQ(totals.interaction.count, 2u);
  EXPECT_EQ(totals.interaction.hops, 2u);
  EXPECT_EQ(totals.total().count, 10u);
  EXPECT_EQ(totals.total().hops, 4u);
  EXPECT_DOUBLE_EQ(totals.total().acd(), 0.4);
}

TEST(Ffi, AdjacentCellsDoNotInteract) {
  // Two particles in adjacent finest cells: interaction lists must stay
  // empty at every level (ancestors are adjacent or identical too).
  const std::vector<Point2> particles = {make_point(1, 1), make_point(2, 1)};
  const CellTree<2> tree(particles, 2);
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  const auto totals = ffi_totals<2>(tree, part, bus);
  EXPECT_EQ(totals.interaction.count, 0u);
  EXPECT_GT(totals.interpolation.count, 0u);
}

TEST(Ffi, SingleParticleOnlyAccumulates) {
  const std::vector<Point2> particles = {make_point(2, 1)};
  const CellTree<2> tree(particles, 3);
  const Partition part(1, 1);
  const topo::BusTopology bus(1);
  const auto totals = ffi_totals<2>(tree, part, bus);
  EXPECT_EQ(totals.interpolation.count, 3u);  // one chain to the root
  EXPECT_EQ(totals.interpolation.hops, 0u);
  EXPECT_EQ(totals.interaction.count, 0u);
}

TEST(Ffi, ParallelMatchesSerialExactly) {
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    particles.push_back(
        make_point((i * 37 + 11) % 128, (i * 101 + i / 7) % 128));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 7) < pack(b, 7);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());
  const CellTree<2> tree(particles, 7);
  const Partition part(particles.size(), 16);
  const topo::RingTopology ring(16);

  const auto serial = ffi_totals<2>(tree, part, ring, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = ffi_totals<2>(tree, part, ring, &pool);
  EXPECT_EQ(serial.interpolation, parallel.interpolation);
  EXPECT_EQ(serial.anterpolation, parallel.anterpolation);
  EXPECT_EQ(serial.interaction, parallel.interaction);
  EXPECT_GT(serial.interaction.count, 0u);
}

TEST(Ffi, ThreeDimensionalOppositeCorners) {
  const std::vector<Point3> particles = {make_point(0, 0, 0),
                                         make_point(3, 3, 3)};
  const CellTree<3> tree(particles, 2);
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  const auto totals = ffi_totals<3>(tree, part, bus);
  // Same shape as 2-D: one 1-hop interpolation at level 1, zero-hop at
  // level 2, symmetric interaction at level 2.
  EXPECT_EQ(totals.interpolation.count, 4u);
  EXPECT_EQ(totals.interpolation.hops, 1u);
  EXPECT_EQ(totals.interaction.count, 2u);
  EXPECT_EQ(totals.interaction.hops, 2u);
}

TEST(Ffi, DeeperTreesAccumulateMoreInterpolation) {
  // The same two particles at finer resolutions produce longer chains.
  auto interp_count = [](unsigned level) {
    const std::uint32_t hi = (1u << level) - 1;
    const std::vector<Point2> particles = {make_point(0, 0),
                                           make_point(hi, hi)};
    const CellTree<2> tree(particles, level);
    const Partition part(2, 2);
    const topo::BusTopology bus(2);
    return ffi_totals<2>(tree, part, bus).interpolation.count;
  };
  EXPECT_EQ(interp_count(2), 4u);
  EXPECT_EQ(interp_count(3), 6u);
  EXPECT_EQ(interp_count(5), 10u);
}

}  // namespace
}  // namespace sfc::fmm
