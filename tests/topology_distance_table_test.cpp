// Flat hop-table construction validated against the virtual distance()
// oracle on every topology family, plus rank-pair aggregation: the
// histogram-and-fold path must be bit-identical to per-event summation.
#include "topology/distance_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "core/acd.hpp"
#include "core/rank_pair.hpp"
#include "distribution/distribution.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "fmm/partition.hpp"
#include "sfc/curve.hpp"
#include "topology/dragonfly.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear.hpp"
#include "topology/tree.hpp"
#include "util/thread_pool.hpp"

namespace sfc {
namespace {

void expect_table_matches(const topo::Topology& net) {
  const topo::Rank p = net.size();
  ASSERT_TRUE(topo::distance_table_fits(p));
  const topo::DistanceTable& t = net.dense_table();
  ASSERT_EQ(t.procs(), p);
  for (topo::Rank a = 0; a < p; ++a) {
    const std::uint32_t* row = t.row(a);
    for (topo::Rank b = 0; b < p; ++b) {
      ASSERT_EQ(t(a, b), net.distance(a, b))
          << net.name() << " p=" << p << " (" << a << "," << b << ")";
      ASSERT_EQ(row[b], t(a, b));
    }
  }
  // Lazy construction caches: repeated calls hand back the same object.
  EXPECT_EQ(&net.dense_table(), &t);
}

TEST(DistanceTable, BusAndRingAllSizes) {
  for (const topo::Rank p : {1u, 2u, 3u, 7u, 16u, 33u}) {
    expect_table_matches(topo::BusTopology(p));
    expect_table_matches(topo::RingTopology(p));
  }
}

TEST(DistanceTable, MeshAndTorusAllLevels) {
  const auto curve = sfc::make_curve<2>(CurveKind::kHilbert);
  for (const unsigned level : {1u, 2u, 3u}) {
    expect_table_matches(topo::MeshTopology<2>(level, *curve));
    expect_table_matches(topo::TorusTopology<2>(level, *curve));
  }
  const auto curve3 = sfc::make_curve<3>(CurveKind::kMorton);
  expect_table_matches(topo::MeshTopology<3>(1, *curve3));
  expect_table_matches(topo::TorusTopology<3>(2, *curve3));
}

TEST(DistanceTable, HypercubeTreeDragonfly) {
  for (const topo::Rank p : {1u, 2u, 8u, 64u}) {
    expect_table_matches(topo::HypercubeTopology(p));
  }
  for (const topo::Rank p : {1u, 4u, 16u, 64u}) {
    expect_table_matches(topo::TreeTopology(p, 4));
  }
  expect_table_matches(topo::TreeTopology(8, 2));
  for (const topo::Rank a : {1u, 2u, 3u, 5u}) {
    expect_table_matches(topo::DragonflyTopology(a));
  }
}

TEST(DistanceTable, GraphTopologyReusesApspCache) {
  expect_table_matches(topo::build_tree_graph(16, 4));
  expect_table_matches(topo::build_hypercube_graph(16));
  // Hand-built graph with internal (non-processor) vertices.
  topo::GraphTopology g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, {0, 2, 4});
  expect_table_matches(g);
}

TEST(DistanceTable, EveryFactoryKind) {
  const auto curve = sfc::make_curve<2>(CurveKind::kHilbert);
  for (const auto kind :
       {topo::TopologyKind::kBus, topo::TopologyKind::kRing,
        topo::TopologyKind::kMesh, topo::TopologyKind::kTorus,
        topo::TopologyKind::kQuadtree, topo::TopologyKind::kHypercube}) {
    const auto net = topo::make_topology<2>(kind, 16, curve.get());
    expect_table_matches(*net);
  }
}

TEST(DistanceTable, BudgetGate) {
  // 4096² is exactly the 2^24-entry budget; anything larger must refuse
  // (table1_nfi sweeps p = 65536 — a table there would be 16 GiB).
  EXPECT_TRUE(topo::distance_table_fits(4096));
  EXPECT_FALSE(topo::distance_table_fits(4097));
  EXPECT_FALSE(topo::distance_table_fits(65536));
}

// ---------------------------------------------------------------------------
// RankPairAccumulator: dense and sparse representations are interchangeable.

/// Deterministic pseudo-random pair stream (no RNG dependency needed).
std::vector<std::pair<topo::Rank, topo::Rank>> pair_stream(topo::Rank p,
                                                           std::size_t n) {
  std::vector<std::pair<topo::Rank, topo::Rank>> pairs;
  pairs.reserve(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    pairs.emplace_back(static_cast<topo::Rank>((state >> 33) % p),
                       static_cast<topo::Rank>((state >> 13) % p));
  }
  return pairs;
}

TEST(RankPairAccumulator, DenseAndSparseAgree) {
  const topo::Rank p = 17;
  core::RankPairAccumulator dense(p);
  core::RankPairAccumulator sparse(p, 0);  // budget 0 forces sparse mode
  ASSERT_TRUE(dense.dense());
  ASSERT_FALSE(sparse.dense());
  for (const auto& [a, b] : pair_stream(p, 5000)) {
    dense.add(a, b);
    sparse.add(a, b);
  }
  EXPECT_EQ(dense.events(), 5000u);
  EXPECT_EQ(sparse.events(), 5000u);

  std::vector<std::tuple<topo::Rank, topo::Rank, std::uint64_t>> dv, sv;
  dense.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t c) {
    dv.emplace_back(a, b, c);
  });
  sparse.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t c) {
    sv.emplace_back(a, b, c);
  });
  EXPECT_EQ(dv, sv);

  const topo::RingTopology ring(p);
  const core::CommTotals dt = dense.fold(ring.dense_table());
  const core::CommTotals st = sparse.fold(ring.dense_table());
  EXPECT_EQ(dt.hops, st.hops);
  EXPECT_EQ(dt.count, st.count);
  // Virtual-dispatch fold (the beyond-budget path) matches the table fold.
  const core::CommTotals dv2 = dense.fold(static_cast<const topo::Topology&>(ring));
  const core::CommTotals sv2 = sparse.fold(static_cast<const topo::Topology&>(ring));
  EXPECT_EQ(dt.hops, dv2.hops);
  EXPECT_EQ(dt.count, dv2.count);
  EXPECT_EQ(st.hops, sv2.hops);
  EXPECT_EQ(st.count, sv2.count);
}

TEST(RankPairAccumulator, FoldMatchesPerEventSum) {
  const topo::Rank p = 16;
  const topo::TreeTopology tree(p, 4);
  core::RankPairAccumulator acc(p);
  std::uint64_t expect_hops = 0;
  const auto pairs = pair_stream(p, 2000);
  for (const auto& [a, b] : pairs) {
    acc.add(a, b);
    expect_hops += tree.distance(a, b);
  }
  const core::CommTotals t = acc.fold(tree.dense_table());
  EXPECT_EQ(t.count, pairs.size());
  EXPECT_EQ(t.hops, expect_hops);
}

TEST(RankPairAccumulator, MergeAcrossModes) {
  const topo::Rank p = 11;
  core::RankPairAccumulator dense(p);
  core::RankPairAccumulator sparse(p, 0);
  core::RankPairAccumulator reference(p);
  const auto pairs = pair_stream(p, 3000);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [a, b] = pairs[i];
    (i % 2 == 0 ? dense : sparse).add(a, b);
    reference.add(a, b);
  }
  dense += sparse;  // sparse histogram merged into a dense one
  EXPECT_EQ(dense.events(), reference.events());

  core::RankPairAccumulator sparse2(p, 0);
  core::RankPairAccumulator dense2(p);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [a, b] = pairs[i];
    (i % 2 == 0 ? dense2 : sparse2).add(a, b);
  }
  sparse2 += dense2;  // and the other direction
  const topo::BusTopology bus(p);
  const auto rt = reference.fold(bus.dense_table());
  const auto dt = dense.fold(bus.dense_table());
  const auto st = sparse2.fold(bus.dense_table());
  EXPECT_EQ(dt.hops, rt.hops);
  EXPECT_EQ(dt.count, rt.count);
  EXPECT_EQ(st.hops, rt.hops);
  EXPECT_EQ(st.count, rt.count);
}

TEST(RankPairAccumulator, CountMultiplicityAndZero) {
  core::RankPairAccumulator acc(4);
  acc.add(1, 2, 10);
  acc.add(1, 2);
  acc.add(3, 0, 0);  // zero-count adds are dropped
  EXPECT_EQ(acc.events(), 11u);
  std::size_t seen = 0;
  acc.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t c) {
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(c, 11u);
    ++seen;
  });
  EXPECT_EQ(seen, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: the aggregated NFI/FFI paths are bit-identical to the direct
// per-event reference on a seeded scenario, on every topology family.

std::vector<std::unique_ptr<topo::Topology>> all_topologies(
    topo::Rank p, const Curve<2>& curve) {
  std::vector<std::unique_ptr<topo::Topology>> nets;
  for (const auto kind :
       {topo::TopologyKind::kBus, topo::TopologyKind::kRing,
        topo::TopologyKind::kMesh, topo::TopologyKind::kTorus,
        topo::TopologyKind::kQuadtree, topo::TopologyKind::kHypercube}) {
    nets.push_back(topo::make_topology<2>(kind, p, &curve));
  }
  return nets;
}

void expect_models_match(const core::AcdInstance<2>& instance,
                         const fmm::Partition& part,
                         const topo::Topology& net, unsigned radius,
                         fmm::NeighborNorm norm, util::ThreadPool* pool) {
  const core::CommTotals nfi = fmm::nfi_totals<2>(
      instance.particles(), instance.grid(), part, net, radius, norm, pool);
  const core::CommTotals nfi_ref = fmm::nfi_totals_direct<2>(
      instance.particles(), instance.grid(), part, net, radius, norm, pool);
  EXPECT_EQ(nfi.hops, nfi_ref.hops) << net.name();
  EXPECT_EQ(nfi.count, nfi_ref.count) << net.name();

  const fmm::FfiTotals ffi =
      fmm::ffi_totals<2>(instance.tree(), part, net, pool);
  const fmm::FfiTotals ffi_ref =
      fmm::ffi_totals_direct<2>(instance.tree(), part, net, pool);
  EXPECT_EQ(ffi.interpolation.hops, ffi_ref.interpolation.hops) << net.name();
  EXPECT_EQ(ffi.anterpolation.hops, ffi_ref.anterpolation.hops) << net.name();
  EXPECT_EQ(ffi.interaction.hops, ffi_ref.interaction.hops) << net.name();
  EXPECT_EQ(ffi.total().count, ffi_ref.total().count) << net.name();
}

TEST(AggregatedEquivalence, AllTopologiesSeededScenario) {
  const unsigned level = 6;
  const topo::Rank p = 64;
  dist::SampleConfig cfg;
  cfg.count = 2000;
  cfg.level = level;
  cfg.seed = 42;
  auto particles = dist::sample_particles<2>(dist::DistKind::kNormal, cfg);
  const auto curve = sfc::make_curve<2>(CurveKind::kHilbert);
  const core::AcdInstance<2> instance(std::move(particles), level, *curve);
  const fmm::Partition part(instance.particles().size(), p);
  util::ThreadPool pool(4);
  for (const auto& net : all_topologies(p, *curve)) {
    expect_models_match(instance, part, *net, 2,
                        fmm::NeighborNorm::kChebyshev, nullptr);
    expect_models_match(instance, part, *net, 1,
                        fmm::NeighborNorm::kManhattan, &pool);
  }
  // Dragonfly has a = 7 → 56 ranks; it needs its own partition.
  const topo::DragonflyTopology dragonfly(7);
  const fmm::Partition dpart(instance.particles().size(), dragonfly.size());
  expect_models_match(instance, dpart, dragonfly, 2,
                      fmm::NeighborNorm::kChebyshev, nullptr);
}

TEST(AggregatedEquivalence, WeightedPartition) {
  const unsigned level = 5;
  dist::SampleConfig cfg;
  cfg.count = 600;
  cfg.level = level;
  cfg.seed = 7;
  auto particles =
      dist::sample_particles<2>(dist::DistKind::kExponential, cfg);
  const auto curve = sfc::make_curve<2>(CurveKind::kMorton);
  const core::AcdInstance<2> instance(std::move(particles), level, *curve);
  // Skewed weights: later particles cost more, so cut points differ from
  // the equal-count partition and some chunks are empty-ish.
  std::vector<double> weights(instance.particles().size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 17);
  }
  const fmm::Partition part = fmm::Partition::weighted(weights, 32);
  const topo::HypercubeTopology cube(32);
  expect_models_match(instance, part, cube, 1,
                      fmm::NeighborNorm::kChebyshev, nullptr);
}

TEST(AggregatedEquivalence, ThreeDimensional) {
  const unsigned level = 3;
  dist::SampleConfig cfg;
  cfg.count = 300;
  cfg.level = level;
  cfg.seed = 3;
  auto particles = dist::sample_particles<3>(dist::DistKind::kUniform, cfg);
  const auto curve = sfc::make_curve<3>(CurveKind::kHilbert);
  const core::AcdInstance<3> instance(std::move(particles), level, *curve);
  const fmm::Partition part(instance.particles().size(), 8);
  const topo::TorusTopology<3> torus(1, *curve);
  const core::CommTotals nfi = fmm::nfi_totals<3>(
      instance.particles(), instance.grid(), part, torus, 1);
  const core::CommTotals ref = fmm::nfi_totals_direct<3>(
      instance.particles(), instance.grid(), part, torus, 1);
  EXPECT_EQ(nfi.hops, ref.hops);
  EXPECT_EQ(nfi.count, ref.count);
  const fmm::FfiTotals ffi = fmm::ffi_totals<3>(instance.tree(), part, torus);
  const fmm::FfiTotals fref =
      fmm::ffi_totals_direct<3>(instance.tree(), part, torus);
  EXPECT_EQ(ffi.total().hops, fref.total().hops);
  EXPECT_EQ(ffi.total().count, fref.total().count);
}

}  // namespace
}  // namespace sfc
