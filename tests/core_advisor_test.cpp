// Advisor tests: the encoded recommendations must match the paper's
// conclusions.
#include "core/advisor.hpp"

#include <gtest/gtest.h>

namespace sfc::core {
namespace {

TEST(Advisor, NearFieldAlwaysHilbert) {
  for (const dist::DistKind d : dist::kAllDistributions) {
    for (const topo::TopologyKind t : topo::kAllTopologies) {
      const auto rec = recommend(d, t, Workload::kNearFieldDominant);
      EXPECT_EQ(rec.particle_curve, CurveKind::kHilbert);
      EXPECT_EQ(rec.processor_curve, CurveKind::kHilbert);
      EXPECT_FALSE(rec.rationale.empty());
    }
  }
}

TEST(Advisor, FarFieldNonUniformUnrankedTopologyPrefersZ) {
  const auto rec = recommend(dist::DistKind::kNormal,
                             topo::TopologyKind::kHypercube,
                             Workload::kFarFieldDominant);
  EXPECT_EQ(rec.particle_curve, CurveKind::kMorton);
}

TEST(Advisor, FarFieldOnTorusKeepsHilbert) {
  const auto rec =
      recommend(dist::DistKind::kExponential, topo::TopologyKind::kTorus,
                Workload::kFarFieldDominant);
  EXPECT_EQ(rec.particle_curve, CurveKind::kHilbert);
  EXPECT_EQ(rec.processor_curve, CurveKind::kHilbert);
}

TEST(Advisor, BalancedDefaultsToHilbert) {
  const auto rec = recommend(dist::DistKind::kUniform,
                             topo::TopologyKind::kMesh, Workload::kBalanced);
  EXPECT_EQ(rec.particle_curve, CurveKind::kHilbert);
}

TEST(Advisor, NormalDistributionNotesReorderingIsPointless) {
  const auto rec =
      recommend(dist::DistKind::kNormal, topo::TopologyKind::kTorus,
                Workload::kNearFieldDominant);
  EXPECT_NE(rec.rationale.find("no incentive"), std::string::npos);
}

TEST(Advisor, RationaleMentionsRankingScopeOffMeshTorus) {
  const auto rec = recommend(dist::DistKind::kUniform,
                             topo::TopologyKind::kQuadtree,
                             Workload::kBalanced);
  EXPECT_NE(rec.rationale.find("natural processor labeling"),
            std::string::npos);
}

}  // namespace
}  // namespace sfc::core
