// Log-tree FFI variant tests: quadrant processor lists, hand-computed
// tree communications, and structural properties.
#include "fmm/ffi_logtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "distribution/distribution.hpp"
#include "fmm/ffi.hpp"
#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "topology/linear.hpp"

namespace sfc::fmm {
namespace {

TEST(QuadrantLists, AssignsParticlesToTheRightQuadrant) {
  // Level 2, quadrants are the 2x2 blocks keyed by Morton digit:
  // 0 = LL, 1 = LR, 2 = UL, 3 = UR.
  const std::vector<Point2> particles = {
      make_point(0, 0),  // LL
      make_point(3, 0),  // LR
      make_point(0, 3),  // UL
      make_point(3, 3),  // UR
  };
  const Partition part(4, 4);  // one particle per processor
  const auto lists = quadrant_processor_lists<2>(particles, 2, part);
  ASSERT_EQ(lists.size(), 4u);
  EXPECT_EQ(lists[0], std::vector<topo::Rank>{0});
  EXPECT_EQ(lists[1], std::vector<topo::Rank>{1});
  EXPECT_EQ(lists[2], std::vector<topo::Rank>{2});
  EXPECT_EQ(lists[3], std::vector<topo::Rank>{3});
}

TEST(QuadrantLists, DeduplicatesAndSortsProcessors) {
  // Six particles in one quadrant over two processors.
  const std::vector<Point2> particles = {
      make_point(0, 0), make_point(1, 0), make_point(0, 1),
      make_point(1, 1), make_point(2, 0), make_point(2, 1)};
  const Partition part(6, 2);  // procs {0,0,0} and {1,1,1}
  const auto lists = quadrant_processor_lists<2>(particles, 3, part);
  EXPECT_EQ(lists[0], (std::vector<topo::Rank>{0, 1}));
  EXPECT_TRUE(lists[1].empty());
  EXPECT_TRUE(lists[2].empty());
  EXPECT_TRUE(lists[3].empty());
}

TEST(LogTree, SingleProcessorQuadrantNeedsNoCommunication) {
  const std::vector<Point2> particles = {make_point(0, 0), make_point(1, 1)};
  const Partition part(2, 1);
  const topo::BusTopology bus(1);
  const auto totals =
      logtree_accumulation_totals<2>(particles, 3, part, bus);
  EXPECT_EQ(totals.count, 0u);
}

TEST(LogTree, HandComputedTwoProcessorQuadrant) {
  // One quadrant with processors {0, 1}: one tree edge, two messages of
  // bus distance 1.
  const std::vector<Point2> particles = {make_point(0, 0), make_point(1, 0)};
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  const auto totals =
      logtree_accumulation_totals<2>(particles, 3, part, bus);
  EXPECT_EQ(totals.count, 2u);
  EXPECT_EQ(totals.hops, 2u);
}

TEST(LogTree, HeapParentIsLowestRankedProcessor) {
  // Six processors in one quadrant: edges (i -> (i-1)/4): 1..4 -> 0,
  // 5 -> 1. Bus hops: (1+2+3+4) + (5-1) = 14 per direction.
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 6; ++i) {
    particles.push_back(make_point(i % 4, i / 4));  // all in quadrant LL
  }
  const Partition part(6, 6);
  const topo::BusTopology bus(6);
  const auto totals =
      logtree_accumulation_totals<2>(particles, 4, part, bus);
  EXPECT_EQ(totals.count, 2u * 5u);
  EXPECT_EQ(totals.hops, 2u * 14u);
}

TEST(LogTree, EdgeCountIsProcessorsMinusOnePerQuadrant) {
  dist::SampleConfig cfg;
  cfg.count = 4000;
  cfg.level = 8;
  cfg.seed = 91;
  auto particles = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  std::sort(particles.begin(), particles.end(),
            [&](const Point2& a, const Point2& b) {
              return curve->index(a, 8) < curve->index(b, 8);
            });
  const Partition part(particles.size(), 64);
  const topo::RingTopology ring(64);
  const auto lists = quadrant_processor_lists<2>(particles, 8, part);
  std::uint64_t expected = 0;
  for (const auto& l : lists) {
    if (!l.empty()) expected += 2 * (l.size() - 1);
  }
  const auto totals =
      logtree_accumulation_totals<2>(particles, 8, part, ring);
  EXPECT_EQ(totals.count, expected);
}

TEST(LogTree, AgreesWithCellTreeModelOnCurveOrdering) {
  // The modeling ambiguity the paper leaves open must not change the
  // conclusion: both accumulation models rank Hilbert over row-major.
  dist::SampleConfig cfg;
  cfg.count = 5000;
  cfg.level = 8;
  cfg.seed = 92;
  const auto raw = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);

  auto both_models = [&](CurveKind kind) {
    const auto curve = make_curve<2>(kind);
    auto sorted = raw;
    std::sort(sorted.begin(), sorted.end(),
              [&](const Point2& a, const Point2& b) {
                return curve->index(a, 8) < curve->index(b, 8);
              });
    const Partition part(sorted.size(), 256);
    const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 256,
                                            curve.get());
    const CellTree<2> tree(sorted, 8);
    const auto cell_model = ffi_totals<2>(tree, part, *net);
    const auto log_model =
        logtree_accumulation_totals<2>(sorted, 8, part, *net);
    return std::make_pair(
        (cell_model.interpolation + cell_model.anterpolation).acd(),
        log_model.acd());
  };
  const auto hilbert = both_models(CurveKind::kHilbert);
  const auto row = both_models(CurveKind::kRowMajor);
  EXPECT_LT(hilbert.first, row.first);
  EXPECT_LT(hilbert.second, row.second);
}

TEST(LogTree, ThreeDimensionalOctants) {
  const std::vector<Point3> particles = {make_point(0, 0, 0),
                                         make_point(7, 7, 7)};
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  // Two octants, one processor each: no accumulation messages.
  const auto totals =
      logtree_accumulation_totals<3>(particles, 3, part, bus);
  EXPECT_EQ(totals.count, 0u);
}

}  // namespace
}  // namespace sfc::fmm
