// Differential properties of the batched encode kernels and the radix
// argsort that PR 5 put on the ordering hot path. The contract under
// test is bit-identity: Curve::index_batch must agree with the virtual
// per-point index() for every curve, level, and point multiset (the
// devirtualized Morton/Gray/row-major kernels and the table-driven
// Hilbert/Moore state machines have no tolerance for drift — the sweep
// cache keys and golden numbers are downstream), and radix_sort_pairs
// must produce exactly the permutation std::stable_sort produces on
// duplicate-heavy keys, serial and threaded alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <ostream>
#include <random>
#include <vector>

#include "sfc/curve.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "util/radix_sort.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sfc::pbt {
namespace {

// ------------------------------------------------------------- case shapes

/// How a batch's points are laid out. Random sets exercise the common
/// case; hull corners stress the extreme coordinates every bit plane of
/// the state machines sees; single-axis sets hold one coordinate at zero
/// so a transposed-axes bug cannot hide behind symmetric inputs.
enum class PointShape { kRandom, kHullCorner, kSingleAxis };

const char* shape_name(PointShape s) {
  switch (s) {
    case PointShape::kRandom:
      return "random";
    case PointShape::kHullCorner:
      return "hull-corner";
    case PointShape::kSingleAxis:
      return "single-axis";
  }
  return "?";
}

/// (curve, level, point multiset) — duplicates allowed; index_batch has
/// no distinctness precondition.
template <int D>
struct BatchCase {
  CurveKind kind = CurveKind::kHilbert;
  unsigned level = 1;
  PointShape shape = PointShape::kRandom;
  std::vector<Point<D>> pts;
};

template <int D>
std::ostream& operator<<(std::ostream& os, const BatchCase<D>& c) {
  os << "{" << curve_name(c.kind) << ", level=" << c.level << ", "
     << shape_name(c.shape) << ", n=" << c.pts.size();
  const std::size_t shown = c.pts.size() < 8 ? c.pts.size() : 8;
  for (std::size_t i = 0; i < shown; ++i) os << " " << to_string(c.pts[i]);
  if (shown < c.pts.size()) os << " ...";
  return os << "}";
}

template <int D>
Point<D> shaped_point(Rand& r, PointShape shape, unsigned level) {
  const std::uint64_t side = std::uint64_t{1} << level;
  Point<D> p{};
  switch (shape) {
    case PointShape::kRandom:
      for (int d = 0; d < D; ++d) {
        p[d] = static_cast<std::uint32_t>(r.below(side));
      }
      break;
    case PointShape::kHullCorner:
      for (int d = 0; d < D; ++d) {
        p[d] = r.below(2) == 0 ? 0u : static_cast<std::uint32_t>(side - 1);
      }
      break;
    case PointShape::kSingleAxis: {
      const int axis = static_cast<int>(r.below(D));
      p[axis] = static_cast<std::uint32_t>(r.below(side));
      break;
    }
  }
  return p;
}

template <int D>
Gen<BatchCase<D>> batch_case(Gen<CurveKind> kinds, unsigned max_lvl) {
  return Gen<BatchCase<D>>{
      [kinds, max_lvl](Rand& r) {
        BatchCase<D> c;
        c.kind = kinds.sample(r);
        c.level = static_cast<unsigned>(r.between(1, max_lvl));
        c.shape = static_cast<PointShape>(r.below(3));
        // Mostly random lengths (including 0 — an empty batch must not
        // touch either array), with a thumb on the scale for the SIMD
        // block boundaries: the lane widths of the vector kernels (4- and
        // 8-point blocks) plus one, where a tail loop that runs one
        // element short or long would hide from round sizes.
        static constexpr std::size_t kBoundary[] = {0, 1, 3, 4, 5, 7, 8,
                                                    9, 15, 16, 17, 65};
        const std::size_t n =
            r.below(4) == 0
                ? kBoundary[r.below(std::size(kBoundary))]
                : static_cast<std::size_t>(r.between(0, 64));
        c.pts.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          c.pts.push_back(shaped_point<D>(r, c.shape, c.level));
        }
        return c;
      },
      [](const BatchCase<D>& c, std::vector<BatchCase<D>>& out) {
        // Drop points (halves, then singles) — a shrunk failure is the
        // one point the kernel mis-encodes.
        if (c.pts.size() > 1) {
          for (const bool front : {true, false}) {
            BatchCase<D> half = c;
            const auto keep =
                static_cast<std::ptrdiff_t>(c.pts.size() / 2);
            if (front) {
              half.pts.assign(c.pts.begin(), c.pts.begin() + keep);
            } else {
              half.pts.assign(c.pts.end() - keep, c.pts.end());
            }
            out.push_back(std::move(half));
          }
          for (std::size_t i = 0; i < c.pts.size() && i < 8; ++i) {
            BatchCase<D> one = c;
            one.pts = {c.pts[i]};
            out.push_back(std::move(one));
          }
        }
        std::vector<unsigned> lvls;
        shrink_integral_toward<unsigned>(1, c.level, lvls);
        for (const unsigned l : lvls) {
          BatchCase<D> down = c;
          down.level = l;
          const std::uint32_t mask = (1u << l) - 1u;
          for (auto& p : down.pts) {
            for (int d = 0; d < D; ++d) p[d] &= mask;
          }
          out.push_back(std::move(down));
        }
      }};
}

/// index_batch vs one virtual index() call per point.
template <int D>
bool batch_matches_per_point(const BatchCase<D>& c) {
  const auto curve = make_curve<D>(c.kind);
  std::vector<std::uint64_t> batched(c.pts.size());
  curve->index_batch(c.pts.data(), batched.data(), c.pts.size(), c.level);
  for (std::size_t i = 0; i < c.pts.size(); ++i) {
    if (batched[i] != curve->index(c.pts[i], c.level)) return false;
  }
  return true;
}

/// index_batch on sub-slices starting at every small offset: callers
/// hand the kernels interior pointers (threaded chunking slices the
/// particle array wherever the chunk math lands), so a kernel that
/// assumes 32-byte alignment — Point<2> is 8 bytes, so odd offsets
/// misalign every wider vector load — or that reads before/after its
/// slice would diverge here and nowhere else.
template <int D>
bool batch_slices_match_per_point(const BatchCase<D>& c) {
  const auto curve = make_curve<D>(c.kind);
  const std::size_t n = c.pts.size();
  std::vector<std::uint64_t> batched(n);
  for (const std::size_t off : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{5}}) {
    if (off > n) break;
    const std::size_t len = n - off;
    std::fill(batched.begin(), batched.end(), ~std::uint64_t{0});
    curve->index_batch(c.pts.data() + off, batched.data(), len, c.level);
    for (std::size_t i = 0; i < len; ++i) {
      if (batched[i] != curve->index(c.pts[off + i], c.level)) return false;
    }
    // The slots past the slice must be untouched.
    for (std::size_t i = len; i < n; ++i) {
      if (batched[i] != ~std::uint64_t{0}) return false;
    }
  }
  return true;
}

/// The dispatched kernel table vs the forced-scalar table on the same
/// batch: bit-identity is the whole contract of the SIMD layer. On a
/// machine (or SFCACD_SIMD=off run) where dispatch already picked
/// scalar, this degenerates to scalar == scalar — still true, just not
/// informative.
template <int D>
bool batch_simd_matches_forced_scalar(const BatchCase<D>& c) {
  const auto curve = make_curve<D>(c.kind);
  std::vector<std::uint64_t> dispatched(c.pts.size());
  curve->index_batch(c.pts.data(), dispatched.data(), c.pts.size(),
                     c.level);
  std::vector<std::uint64_t> scalar(c.pts.size());
  {
    const util::simd::ScopedForceScalar force;
    curve->index_batch(c.pts.data(), scalar.data(), c.pts.size(), c.level);
  }
  return dispatched == scalar;
}

// --------------------------------------------------- batched == per-point

TEST(BatchDiff, BatchedMatchesPerPoint2D) {
  SFCACD_PBT_CHECK(batch_case<2>(any_curve2(), 16), batch_matches_per_point<2>);
}

TEST(BatchDiff, BatchedMatchesPerPoint3D) {
  SFCACD_PBT_CHECK(batch_case<3>(any_curve3(), 10), batch_matches_per_point<3>);
}

TEST(BatchDiff, BatchedSlicesMatchPerPoint2D) {
  SFCACD_PBT_CHECK(batch_case<2>(any_curve2(), 16),
                   batch_slices_match_per_point<2>);
}

TEST(BatchDiff, BatchedSlicesMatchPerPoint3D) {
  SFCACD_PBT_CHECK(batch_case<3>(any_curve3(), 10),
                   batch_slices_match_per_point<3>);
}

TEST(BatchDiff, SimdMatchesForcedScalar2D) {
  SFCACD_PBT_CHECK(batch_case<2>(any_curve2(), 16),
                   batch_simd_matches_forced_scalar<2>);
}

TEST(BatchDiff, SimdMatchesForcedScalar3D) {
  SFCACD_PBT_CHECK(batch_case<3>(any_curve3(), 10),
                   batch_simd_matches_forced_scalar<3>);
}

TEST(BatchDiff, BatchedMatchesPerPointAtMaxLevel2D) {
  // Level 31 is the 2-D ceiling (62-bit keys): the full state-machine
  // word width, where a missed carry or shift overflow would live.
  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const unsigned level = 31;
    const std::uint32_t top = 0x7fffffffu;
    const std::vector<Point2> pts = {
        make_point(0, 0),          make_point(top, 0),
        make_point(0, top),        make_point(top, top),
        make_point(0x55555555u, 0x2aaaaaaau),
        make_point(0x12345678u, 0x6abcdef0u)};
    std::vector<std::uint64_t> batched(pts.size());
    curve->index_batch(pts.data(), batched.data(), pts.size(), level);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(batched[i], curve->index(pts[i], level))
          << curve_name(kind) << " at " << to_string(pts[i]);
    }
  }
}

TEST(BatchDiff, BatchedLevelZeroIsAllZeros) {
  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const std::vector<Point2> pts(5, make_point(0, 0));
    std::vector<std::uint64_t> out(pts.size(), 7u);
    curve->index_batch(pts.data(), out.data(), pts.size(), 0);
    for (const std::uint64_t v : out) EXPECT_EQ(v, 0u) << curve_name(kind);
  }
}

// ------------------------------------------------ radix == stable_sort

/// Key pools small enough that duplicates are guaranteed — the regime
/// where an unstable sort would scramble tie order.
Gen<std::vector<std::uint64_t>> dup_heavy_keys() {
  return Gen<std::vector<std::uint64_t>>{
      [](Rand& r) {
        const std::size_t n = r.between(0, 200);
        // Distinct values across several byte positions so multiple radix
        // passes run (and with odd pass counts, the final buffer swap).
        const unsigned shift = static_cast<unsigned>(r.below(7)) * 8;
        const std::uint64_t pool_size = 1 + r.below(6);
        std::vector<std::uint64_t> keys;
        keys.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          keys.push_back((r.below(pool_size) << shift) | r.below(4));
        }
        return keys;
      },
      [](const std::vector<std::uint64_t>& v,
         std::vector<std::vector<std::uint64_t>>& out) {
        if (v.empty()) return;
        const auto mid = static_cast<std::ptrdiff_t>(v.size() / 2);
        out.push_back({v.begin(), v.begin() + mid});
        out.push_back({v.begin() + mid, v.end()});
        if (v.size() > 1) out.push_back({v.begin() + 1, v.end()});
      }};
}

std::vector<util::KeyIndex> pairs_of(const std::vector<std::uint64_t>& keys) {
  std::vector<util::KeyIndex> items(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    items[i] = util::KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
  }
  return items;
}

bool same_permutation(const std::vector<util::KeyIndex>& a,
                      const std::vector<util::KeyIndex>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].index != b[i].index) return false;
  }
  return true;
}

TEST(BatchDiff, RadixMatchesStableSortOnDuplicateHeavyKeys) {
  SFCACD_PBT_CHECK(dup_heavy_keys(), [](const std::vector<std::uint64_t>& keys) {
    std::vector<util::KeyIndex> radix = pairs_of(keys);
    std::vector<util::KeyIndex> stable = pairs_of(keys);
    util::radix_sort_pairs(radix);
    std::stable_sort(stable.begin(), stable.end(),
                     [](const util::KeyIndex& x, const util::KeyIndex& y) {
                       return x.key < y.key;
                     });
    return same_permutation(radix, stable);
  });
}

TEST(BatchDiff, ThreadedRadixMatchesSerialAboveCutoff) {
  // The serial/threaded cutoff is calibrated per machine, so pin it to
  // its floor for this test: 50k pairs then always clears it and the
  // pool path actually runs. Dup-heavy keys make any stability break
  // visible and the high byte forces a multi-pass sort across
  // non-adjacent byte positions.
  ::setenv("SFCACD_RADIX_THREAD_MIN", "4096", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("SFCACD_RADIX_THREAD_MIN"); }
  } guard;
  ASSERT_LE(util::detail::threaded_radix_min(), 50000u);
  std::mt19937_64 rng(20260806);
  std::vector<std::uint64_t> keys(50000);
  for (auto& k : keys) {
    k = ((rng() % 7) << 40) | ((rng() % 5) << 8) | (rng() % 3);
  }
  std::vector<util::KeyIndex> serial = pairs_of(keys);
  util::radix_sort_pairs(serial);

  std::vector<util::KeyIndex> stable = pairs_of(keys);
  std::stable_sort(stable.begin(), stable.end(),
                   [](const util::KeyIndex& x, const util::KeyIndex& y) {
                     return x.key < y.key;
                   });
  ASSERT_TRUE(same_permutation(serial, stable));

  for (const unsigned workers : {2u, 3u, 4u}) {
    util::ThreadPool pool(workers);
    std::vector<util::KeyIndex> threaded = pairs_of(keys);
    util::radix_sort_pairs(threaded, &pool);
    EXPECT_TRUE(same_permutation(serial, threaded)) << workers << " workers";
  }
}

TEST(BatchDiff, ThreadedRadixFallsBackBelowCutoff) {
  // Below the cutoff the pool must be ignored entirely (no fan-out
  // latency on small sorts) and the result still match stable_sort.
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> keys(1000);
  for (auto& k : keys) k = rng() % 11;
  util::ThreadPool pool(4);
  std::vector<util::KeyIndex> threaded = pairs_of(keys);
  util::radix_sort_pairs(threaded, &pool);
  std::vector<util::KeyIndex> stable = pairs_of(keys);
  std::stable_sort(stable.begin(), stable.end(),
                   [](const util::KeyIndex& x, const util::KeyIndex& y) {
                     return x.key < y.key;
                   });
  EXPECT_TRUE(same_permutation(threaded, stable));
}

TEST(BatchDiff, RadixHandlesDegenerateInputs) {
  std::vector<util::KeyIndex> empty;
  util::radix_sort_pairs(empty);
  EXPECT_TRUE(empty.empty());

  std::vector<util::KeyIndex> one = {{42u, 0u}};
  util::radix_sort_pairs(one);
  EXPECT_EQ(one[0].key, 42u);

  // All-equal keys: the varying mask is zero, so the sort must return
  // without a single scatter and keep input order.
  std::vector<util::KeyIndex> equal = pairs_of({9u, 9u, 9u, 9u});
  util::radix_sort_pairs(equal);
  for (std::size_t i = 0; i < equal.size(); ++i) {
    EXPECT_EQ(equal[i].index, i);
  }
}

}  // namespace
}  // namespace sfc::pbt
