// Differential and metamorphic properties of the curve layer: every
// implemented curve is a bijection at random levels, the optimized
// Hilbert implementations (canonical closed form, LUT state machine)
// agree bit-for-bit with each other and with the naive recursive
// reference, Morton/Gray match their recursive constructions, and the
// continuity/adjacency guarantees (Hilbert, Snake unit steps; Moore's
// closed loop) hold at every consecutive index.
#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <vector>

#include "sfc/canonical_hilbert.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert_lut.hpp"
#include "sfc/recursive_ref.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"

namespace sfc::pbt {
namespace {

std::vector<CurveKind> all_curves() {
  return std::vector<CurveKind>(std::begin(kAllCurves), std::end(kAllCurves));
}

// ------------------------------------------------------------- case shapes

/// (curve, level, linear index) with the index valid for the level.
struct CurveIdx {
  CurveKind kind = CurveKind::kHilbert;
  unsigned level = 1;
  std::uint64_t idx = 0;
};

std::ostream& operator<<(std::ostream& os, const CurveIdx& c) {
  return os << "{" << curve_name(c.kind) << ", level=" << c.level
            << ", idx=" << c.idx << "}";
}

Gen<CurveIdx> curve_idx(unsigned max_lvl) {
  return Gen<CurveIdx>{
      [max_lvl, opts = all_curves()](Rand& r) {
        CurveIdx c;
        c.kind = opts[r.below(opts.size())];
        c.level = static_cast<unsigned>(r.between(1, max_lvl));
        c.idx = r.below(grid_size<2>(c.level));
        return c;
      },
      [opts = all_curves()](const CurveIdx& c, std::vector<CurveIdx>& out) {
        std::vector<std::uint64_t> idxs;
        shrink_integral_toward<std::uint64_t>(0, c.idx, idxs);
        for (const std::uint64_t i : idxs) out.push_back({c.kind, c.level, i});
        std::vector<unsigned> lvls;
        shrink_integral_toward<unsigned>(1, c.level, lvls);
        for (const unsigned l : lvls) {
          if (c.idx < grid_size<2>(l)) out.push_back({c.kind, l, c.idx});
        }
        for (const CurveKind k : opts) {
          if (k == c.kind) break;
          out.push_back({k, c.level, c.idx});
        }
      }};
}

/// (curve, level, point) with the point on the level grid.
struct CurvePoint {
  CurveKind kind = CurveKind::kHilbert;
  unsigned level = 1;
  Point2 p{};
};

std::ostream& operator<<(std::ostream& os, const CurvePoint& c) {
  return os << "{" << curve_name(c.kind) << ", level=" << c.level << ", p="
            << to_string(c.p) << "}";
}

Gen<CurvePoint> curve_point(unsigned max_lvl) {
  return Gen<CurvePoint>{
      [max_lvl, opts = all_curves()](Rand& r) {
        CurvePoint c;
        c.kind = opts[r.below(opts.size())];
        c.level = static_cast<unsigned>(r.between(1, max_lvl));
        const std::uint64_t side = std::uint64_t{1} << c.level;
        c.p = make_point(static_cast<std::uint32_t>(r.below(side)),
                         static_cast<std::uint32_t>(r.below(side)));
        return c;
      },
      [opts = all_curves()](const CurvePoint& c, std::vector<CurvePoint>& out) {
        for (int axis = 0; axis < 2; ++axis) {
          std::vector<std::uint32_t> cs;
          shrink_integral_toward<std::uint32_t>(0, c.p[axis], cs);
          for (const std::uint32_t v : cs) {
            CurvePoint smaller = c;
            smaller.p[axis] = v;
            out.push_back(smaller);
          }
        }
        for (const CurveKind k : opts) {
          if (k == c.kind) break;
          out.push_back({k, c.level, c.p});
        }
      }};
}

// ------------------------------------------------------------- bijectivity

TEST(CurveDiff, IndexToPointRoundTrips2D) {
  SFCACD_PBT_CHECK(curve_idx(10), [](const CurveIdx& c) {
    const auto curve = make_curve<2>(c.kind);
    const Point2 p = curve->point(c.idx, c.level);
    return in_grid(p, c.level) && curve->index(p, c.level) == c.idx;
  });
}

TEST(CurveDiff, PointToIndexRoundTrips2D) {
  SFCACD_PBT_CHECK(curve_point(10), [](const CurvePoint& c) {
    const auto curve = make_curve<2>(c.kind);
    const std::uint64_t idx = curve->index(c.p, c.level);
    return idx < grid_size<2>(c.level) && curve->point(idx, c.level) == c.p;
  });
}

TEST(CurveDiff, IndexToPointRoundTrips3D) {
  const Gen<CurveKind> kinds = any_curve3();
  SFCACD_PBT_CHECK(
      (Gen<CurveIdx>{[kinds](Rand& r) {
                       CurveIdx c;
                       c.kind = kinds.sample(r);
                       c.level = static_cast<unsigned>(r.between(1, 6));
                       c.idx = r.below(grid_size<3>(c.level));
                       return c;
                     },
                     [](const CurveIdx& c, std::vector<CurveIdx>& out) {
                       std::vector<std::uint64_t> idxs;
                       shrink_integral_toward<std::uint64_t>(0, c.idx, idxs);
                       for (const std::uint64_t i : idxs) {
                         out.push_back({c.kind, c.level, i});
                       }
                     }}),
      [](const CurveIdx& c) {
        const auto curve = make_curve<3>(c.kind);
        const Point3 p = curve->point(c.idx, c.level);
        return in_grid(p, c.level) && curve->index(p, c.level) == c.idx;
      });
}

TEST(CurveDiff, LevelZeroIsTheSinglePointForEveryCurve) {
  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    EXPECT_EQ(curve->point(0, 0), make_point(0, 0)) << curve_name(kind);
    EXPECT_EQ(curve->index(make_point(0, 0), 0), 0u) << curve_name(kind);
  }
}

// ------------------------------------------- recursive-definition oracles

TEST(CurveDiff, MortonMatchesRecursiveReferenceExhaustively) {
  const auto curve = make_curve<2>(CurveKind::kMorton);
  for (unsigned level = 1; level <= 4; ++level) {
    const std::vector<Point2> order = ref::morton2_order(level);
    ASSERT_EQ(order.size(), grid_size<2>(level));
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(curve->point(i, level), order[i])
          << "level " << level << " idx " << i;
      ASSERT_EQ(curve->index(order[i], level), i);
    }
  }
}

TEST(CurveDiff, GrayMatchesRecursiveReferenceExhaustively) {
  const auto curve = make_curve<2>(CurveKind::kGray);
  for (unsigned level = 1; level <= 4; ++level) {
    const std::vector<Point2> order = ref::gray2_order(level);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(curve->point(i, level), order[i])
          << "level " << level << " idx " << i;
      ASSERT_EQ(curve->index(order[i], level), i);
    }
  }
}

TEST(CurveDiff, CanonicalHilbertMatchesRecursiveReferenceExhaustively) {
  for (unsigned level = 1; level <= 4; ++level) {
    const std::vector<Point2> order = ref::hilbert2_order(level);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(canonical_hilbert_point(i, level), order[i])
          << "level " << level << " idx " << i;
      ASSERT_EQ(canonical_hilbert_index(order[i], level), i);
      ASSERT_EQ(ref::hilbert2_index(order[i], level), i);
    }
  }
}

TEST(CurveDiff, HilbertLutMatchesCanonicalOnRandomPoints) {
  // The LUT state machine must be bit-exact against the closed-form
  // recursion at every level it supports, not just the small exhaustive
  // ones — random levels up to 16 cover multi-word state evolution.
  SFCACD_PBT_CHECK(curve_point(16), [](const CurvePoint& c) {
    return hilbert_lut_index(c.p, c.level) ==
           canonical_hilbert_index(c.p, c.level);
  });
}

TEST(CurveDiff, HilbertLutMatchesCanonicalOnRandomIndices) {
  SFCACD_PBT_CHECK(curve_idx(16), [](const CurveIdx& c) {
    return hilbert_lut_point(c.idx, c.level) ==
           canonical_hilbert_point(c.idx, c.level);
  });
}

// ---------------------------------------------------- adjacency invariants

TEST(CurveDiff, HilbertAndSnakeTakeUnitStepsEverywhere) {
  const Gen<CurveKind> kinds =
      element_of(std::vector<CurveKind>{CurveKind::kHilbert, CurveKind::kSnake});
  SFCACD_PBT_CHECK(
      (Gen<CurveIdx>{[kinds](Rand& r) {
                       CurveIdx c;
                       c.kind = kinds.sample(r);
                       c.level = static_cast<unsigned>(r.between(1, 8));
                       c.idx = r.below(grid_size<2>(c.level) - 1);
                       return c;
                     },
                     [](const CurveIdx& c, std::vector<CurveIdx>& out) {
                       std::vector<std::uint64_t> idxs;
                       shrink_integral_toward<std::uint64_t>(0, c.idx, idxs);
                       for (const std::uint64_t i : idxs) {
                         out.push_back({c.kind, c.level, i});
                       }
                     }}),
      [](const CurveIdx& c) {
        const auto curve = make_curve<2>(c.kind);
        return manhattan(curve->point(c.idx, c.level),
                         curve->point(c.idx + 1, c.level)) == 1;
      });
}

TEST(CurveDiff, MooreIsAClosedUnitLoop) {
  // Moore's defining extension over Hilbert: the step wraps around from
  // the last index back to the first, so indices are taken modulo the
  // grid size.
  SFCACD_PBT_CHECK(
      (Gen<CurveIdx>{[](Rand& r) {
                       CurveIdx c;
                       c.kind = CurveKind::kMoore;
                       c.level = static_cast<unsigned>(r.between(1, 8));
                       c.idx = r.below(grid_size<2>(c.level));
                       return c;
                     },
                     [](const CurveIdx& c, std::vector<CurveIdx>& out) {
                       std::vector<std::uint64_t> idxs;
                       shrink_integral_toward<std::uint64_t>(0, c.idx, idxs);
                       for (const std::uint64_t i : idxs) {
                         out.push_back({c.kind, c.level, i});
                       }
                     }}),
      [](const CurveIdx& c) {
        const auto curve = make_curve<2>(CurveKind::kMoore);
        const std::uint64_t n = grid_size<2>(c.level);
        return manhattan(curve->point(c.idx, c.level),
                         curve->point((c.idx + 1) % n, c.level)) == 1;
      });
}

}  // namespace
}  // namespace sfc::pbt
