// Near-field interaction model tests with hand-computed communication
// totals on tiny instances.
#include "fmm/nfi.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topology/linear.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sfc::fmm {
namespace {

core::CommTotals run_nfi(const std::vector<Point2>& particles, unsigned level,
                         topo::Rank procs, unsigned radius,
                         NeighborNorm norm = NeighborNorm::kChebyshev) {
  const OccupancyGrid<2> grid(particles, level);
  const Partition part(particles.size(), procs);
  const topo::BusTopology bus(procs);
  return nfi_totals<2>(particles, grid, part, bus, radius, norm);
}

TEST(Nfi, TwoAdjacentParticlesTwoProcessors) {
  // Ordered pairs (0 -> 1) and (1 -> 0), one bus hop each.
  const auto totals = run_nfi({make_point(0, 0), make_point(1, 0)}, 2, 2, 1);
  EXPECT_EQ(totals.count, 2u);
  EXPECT_EQ(totals.hops, 2u);
  EXPECT_DOUBLE_EQ(totals.acd(), 1.0);
}

TEST(Nfi, RadiusGatesInteraction) {
  const std::vector<Point2> particles = {make_point(0, 0), make_point(2, 0)};
  EXPECT_EQ(run_nfi(particles, 2, 2, 1).count, 0u);
  EXPECT_EQ(run_nfi(particles, 2, 2, 2).count, 2u);
  EXPECT_EQ(run_nfi(particles, 2, 2, 3).count, 2u);
}

TEST(Nfi, SingleProcessorZeroHopsButCounted) {
  // Paper: "possibly zero" distances are still communications.
  const auto totals = run_nfi({make_point(0, 0), make_point(1, 1)}, 2, 1, 1);
  EXPECT_EQ(totals.count, 2u);
  EXPECT_EQ(totals.hops, 0u);
  EXPECT_DOUBLE_EQ(totals.acd(), 0.0);
}

TEST(Nfi, ChebyshevCountsDiagonalManhattanDoesNot) {
  const std::vector<Point2> particles = {make_point(0, 0), make_point(1, 1)};
  EXPECT_EQ(run_nfi(particles, 2, 2, 1, NeighborNorm::kChebyshev).count, 2u);
  EXPECT_EQ(run_nfi(particles, 2, 2, 1, NeighborNorm::kManhattan).count, 0u);
  EXPECT_EQ(run_nfi(particles, 2, 2, 2, NeighborNorm::kManhattan).count, 2u);
}

TEST(Nfi, ThreeParticleClusterHandComputed) {
  // Particles 0:(0,0), 1:(1,0), 2:(0,1) on 3 bus processors.
  // All three pairs are Chebyshev-adjacent; bus hops: (0,1)=1 (0,2)=2
  // (1,2)=1, each counted in both directions.
  const auto totals = run_nfi(
      {make_point(0, 0), make_point(1, 0), make_point(0, 1)}, 2, 3, 1);
  EXPECT_EQ(totals.count, 6u);
  EXPECT_EQ(totals.hops, 8u);
  EXPECT_DOUBLE_EQ(totals.acd(), 8.0 / 6.0);
}

TEST(Nfi, IsolatedParticleContributesNothing) {
  const auto totals = run_nfi(
      {make_point(0, 0), make_point(1, 0), make_point(3, 3)}, 2, 3, 1);
  EXPECT_EQ(totals.count, 2u);  // only the adjacent pair communicates
}

TEST(Nfi, BoundaryWindowsAreClipped) {
  // A particle at every grid corner, radius larger than the grid: must not
  // read out of bounds and must find all pairs.
  const std::vector<Point2> particles = {make_point(0, 0), make_point(3, 0),
                                         make_point(0, 3), make_point(3, 3)};
  const auto totals = run_nfi(particles, 2, 4, 5);
  EXPECT_EQ(totals.count, 12u);  // all 4*3 ordered pairs within radius 5
}

TEST(Nfi, EmptyParticleSet) {
  const auto totals = run_nfi({}, 3, 4, 2);
  EXPECT_EQ(totals.count, 0u);
  EXPECT_EQ(totals.hops, 0u);
}

TEST(Nfi, ParallelMatchesSerialExactly) {
  // 400 particles in a 32x32 grid, radius 2: integer totals must be
  // identical no matter how the reduction is chunked.
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 400; ++i) {
    particles.push_back(make_point((i * 7) % 32, (i * 13 + i / 31) % 32));
  }
  // Deduplicate cells (the model assumes distinct cells).
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 5) < pack(b, 5);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());

  const OccupancyGrid<2> grid(particles, 5);
  const Partition part(particles.size(), 8);
  const topo::BusTopology bus(8);

  const auto serial = nfi_totals<2>(particles, grid, part, bus, 2,
                                    NeighborNorm::kChebyshev, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = nfi_totals<2>(particles, grid, part, bus, 2,
                                      NeighborNorm::kChebyshev, &pool);
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial.count, 0u);
}

TEST(Nfi, ThreeDimensionalPair) {
  const std::vector<Point3> particles = {make_point(0, 0, 0),
                                         make_point(1, 1, 1)};
  const OccupancyGrid<3> grid(particles, 2);
  const Partition part(2, 2);
  const topo::BusTopology bus(2);
  const auto cheb = nfi_totals<3>(particles, grid, part, bus, 1,
                                  NeighborNorm::kChebyshev, nullptr);
  EXPECT_EQ(cheb.count, 2u);
  EXPECT_EQ(cheb.hops, 2u);
  const auto manh = nfi_totals<3>(particles, grid, part, bus, 2,
                                  NeighborNorm::kManhattan, nullptr);
  EXPECT_EQ(manh.count, 0u);  // Manhattan distance is 3
}

TEST(Nfi, SimdHalfWindowMatchesForcedScalar) {
  // The dispatched half-window compaction kernel vs the per-cell scalar
  // scan, over both norms and the radii that take the SIMD path (r >= 2),
  // including a radius that clips every boundary window. Particles land
  // on edges and corners so the masked tail loads run at the row ends.
  std::vector<Point2> particles;
  for (std::uint32_t i = 0; i < 500; ++i) {
    particles.push_back(make_point((i * 17 + i / 37) % 32, (i * 29) % 32));
  }
  std::sort(particles.begin(), particles.end(),
            [](const Point2& a, const Point2& b) {
              return pack(a, 5) < pack(b, 5);
            });
  particles.erase(std::unique(particles.begin(), particles.end()),
                  particles.end());

  const OccupancyGrid<2> grid(particles, 5);
  const Partition part(particles.size(), 8);
  const topo::BusTopology bus(8);

  for (const unsigned radius : {2u, 3u, 4u, 40u}) {
    for (const NeighborNorm norm :
         {NeighborNorm::kChebyshev, NeighborNorm::kManhattan}) {
      const auto dispatched =
          nfi_totals<2>(particles, grid, part, bus, radius, norm, nullptr);
      const util::simd::ScopedForceScalar force;
      const auto scalar =
          nfi_totals<2>(particles, grid, part, bus, radius, norm, nullptr);
      EXPECT_EQ(dispatched, scalar)
          << "radius=" << radius << " norm="
          << (norm == NeighborNorm::kChebyshev ? "chebyshev" : "manhattan");
      EXPECT_GT(dispatched.count, 0u);
    }
  }
}

}  // namespace
}  // namespace sfc::fmm
