// Cell geometry tests: parent/child relations, neighbor stencils, Morton
// key coarsening.
#include "fmm/cells.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sfc::fmm {
namespace {

TEST(Cells, CellAtLevelShifts) {
  const Point2 p = make_point(13, 6);  // on a level-4 (16x16) grid
  EXPECT_EQ(cell_at_level(p, 4, 4), p);
  EXPECT_EQ(cell_at_level(p, 4, 3), make_point(6, 3));
  EXPECT_EQ(cell_at_level(p, 4, 2), make_point(3, 1));
  EXPECT_EQ(cell_at_level(p, 4, 1), make_point(1, 0));
  EXPECT_EQ(cell_at_level(p, 4, 0), make_point(0, 0));
}

TEST(Cells, ParentHalvesCoordinates) {
  EXPECT_EQ(parent_cell(make_point(5, 2)), make_point(2, 1));
  EXPECT_EQ(parent_cell(make_point(0, 0)), make_point(0, 0));
  EXPECT_EQ(parent_cell(make_point(7, 7)), make_point(3, 3));
}

TEST(Cells, AdjacencyIsChebyshevOne) {
  const Point2 c = make_point(4, 4);
  EXPECT_FALSE(are_adjacent(c, c));
  EXPECT_TRUE(are_adjacent(c, make_point(5, 5)));
  EXPECT_TRUE(are_adjacent(c, make_point(3, 4)));
  EXPECT_FALSE(are_adjacent(c, make_point(6, 4)));
  EXPECT_FALSE(are_adjacent(c, make_point(6, 6)));
}

TEST(Cells, InteriorCellHasEightNeighbors) {
  std::vector<Point2> out;
  neighbors(make_point(3, 3), 3, out);
  EXPECT_EQ(out.size(), 8u);
  for (const auto& n : out) {
    EXPECT_TRUE(are_adjacent(make_point(3, 3), n));
  }
  // All distinct.
  std::set<std::uint64_t> keys;
  for (const auto& n : out) keys.insert(pack(n, 3));
  EXPECT_EQ(keys.size(), 8u);
}

TEST(Cells, CornerCellHasThreeNeighbors) {
  std::vector<Point2> out;
  neighbors(make_point(0, 0), 3, out);
  EXPECT_EQ(out.size(), 3u);
  neighbors(make_point(7, 7), 3, out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Cells, EdgeCellHasFiveNeighbors) {
  std::vector<Point2> out;
  neighbors(make_point(0, 4), 3, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(Cells, LevelZeroRootHasNoNeighbors) {
  std::vector<Point2> out;
  neighbors(make_point(0, 0), 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(Cells, ThreeDInteriorCellHas26Neighbors) {
  std::vector<Point3> out;
  neighbors(make_point(2, 2, 2), 3, out);
  EXPECT_EQ(out.size(), 26u);
}

TEST(Cells, ThreeDCornerCellHas7Neighbors) {
  std::vector<Point3> out;
  neighbors(make_point(0, 0, 0), 2, out);
  EXPECT_EQ(out.size(), 7u);
}

TEST(Cells, MortonKeyCoarseningMatchesGeometry) {
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      const Point2 cell = make_point(x, y);
      const std::uint64_t key = cell_key(cell);
      ASSERT_EQ(parent_key<2>(key), cell_key(parent_cell(cell)));
      ASSERT_EQ(morton_point<2>(key), cell);
    }
  }
}

TEST(Cells, KeyCoarseningPreservesSortedOrder) {
  // The FFI coarsening pass relies on key >> D preserving sorted order.
  std::vector<std::uint64_t> keys;
  for (std::uint32_t y = 0; y < 8; ++y) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      keys.push_back(cell_key(make_point(x, y)));
    }
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LE(parent_key<2>(keys[i - 1]), parent_key<2>(keys[i]));
  }
}

}  // namespace
}  // namespace sfc::fmm
