// Metamorphic properties of the sweep engine over randomized study
// grids: artifact reuse, cache pressure, and fold parallelism are pure
// wall-clock optimizations, so for any Study the result cells, the
// across-trial statistics, and (for a fixed configuration) the cache
// counters must be bit-identical across those execution strategies.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/artifact_store.hpp"
#include "core/sweep.hpp"
#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "topology/topology.hpp"
#include "util/thread_pool.hpp"

namespace sfc::pbt {
namespace {

util::ThreadPool& shared_pool() {
  static util::ThreadPool pool(4);
  return pool;
}

std::ostream& operator<<(std::ostream& os, const core::Study& s) {
  os << "{n=" << s.particles << ", level=" << s.level << ", radius="
     << s.radius << ", norm="
     << (s.norm == fmm::NeighborNorm::kChebyshev ? "chebyshev" : "manhattan")
     << ", seed=" << s.seed << ", trials=" << s.trials << ", dists=[";
  for (const auto d : s.distributions) os << dist::dist_name(d) << " ";
  os << "], particle_curves=[";
  for (const auto c : s.particle_curves) os << curve_name(c) << " ";
  os << "], processor_curves=[";
  for (const auto c : s.processor_curves) os << curve_name(c) << " ";
  os << "], topologies=[";
  for (const auto t : s.topologies) os << topo::topology_name(t) << " ";
  os << "], procs=[";
  for (const auto p : s.proc_counts) os << p << " ";
  return os << "]}";
}

}  // namespace

// ADL cannot find the operator<< above from the runner (core::Study's
// associated namespace is sfc::core), so register a Printer directly.
namespace detail {
template <>
struct Printer<core::Study> {
  static std::string print(const core::Study& s) {
    std::ostringstream os;
    os << s;
    return os.str();
  }
};
}  // namespace detail

namespace {

/// `count` distinct elements of `options`, keeping the original order.
template <typename T, std::size_t N>
std::vector<T> subset_of(Rand& r, const T (&options)[N], std::size_t count) {
  std::vector<bool> taken(N, false);
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t i = r.below(N);
    while (taken[i]) i = (i + 1) % N;
    taken[i] = true;
  }
  std::vector<T> out;
  for (std::size_t i = 0; i < N; ++i) {
    if (taken[i]) out.push_back(options[i]);
  }
  return out;
}

Gen<core::Study> study_gen() {
  return Gen<core::Study>{
      [](Rand& r) {
        core::Study s;
        s.name = "pbt";
        s.particles = r.between(32, 120);
        s.level = static_cast<unsigned>(r.between(5, 6));
        s.radius = static_cast<unsigned>(r.between(1, 2));
        s.norm = r.coin() ? fmm::NeighborNorm::kChebyshev
                          : fmm::NeighborNorm::kManhattan;
        s.seed = r.u64();
        s.trials = static_cast<unsigned>(r.between(1, 2));
        s.distributions =
            subset_of(r, dist::kAllDistributions, r.between(1, 2));
        s.particle_curves = subset_of(r, kAllCurves, r.between(1, 2));
        s.processor_curves =
            r.coin() ? std::vector<CurveKind>{}  // paired mode
                     : subset_of(r, kAllCurves, r.between(1, 2));
        s.topologies = subset_of(r, topo::kAllTopologies, r.between(1, 3));
        const topo::Rank pc_options[] = {1, 4, 16, 64};
        s.proc_counts = subset_of(r, pc_options, r.between(1, 2));
        return s;
      },
      [](const core::Study& s, std::vector<core::Study>& out) {
        auto with = [&s](auto&& mutate) {
          core::Study smaller = s;
          mutate(smaller);
          return smaller;
        };
        if (s.distributions.size() > 1) {
          out.push_back(with(
              [](core::Study& t) { t.distributions.resize(1); }));
        }
        if (s.particle_curves.size() > 1) {
          out.push_back(with(
              [](core::Study& t) { t.particle_curves.resize(1); }));
        }
        if (!s.processor_curves.empty()) {
          out.push_back(with(
              [](core::Study& t) { t.processor_curves.clear(); }));
        }
        if (s.topologies.size() > 1) {
          out.push_back(with([](core::Study& t) { t.topologies.resize(1); }));
        }
        if (s.proc_counts.size() > 1) {
          out.push_back(with([](core::Study& t) { t.proc_counts.resize(1); }));
        }
        if (s.trials > 1) {
          out.push_back(with([](core::Study& t) { t.trials = 1; }));
        }
        if (s.particles > 32) {
          out.push_back(with([&s](core::Study& t) {
            t.particles = 32 + (s.particles - 32) / 2;
          }));
        }
      }};
}

// Exact (bit-level) comparison helpers: the engine's contract is
// bit-identical results, not approximately-equal ones.

std::optional<std::string> expect_same_cells(const core::StudyResult& a,
                                             const core::StudyResult& b,
                                             const char* what) {
  if (a.cells.size() != b.cells.size()) {
    return std::string(what) + ": cell counts differ";
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].nfi_acd != b.cells[i].nfi_acd ||
        a.cells[i].ffi_acd != b.cells[i].ffi_acd) {
      return std::string(what) + ": cell " + std::to_string(i) + " differs";
    }
  }
  if (a.stats.size() != b.stats.size()) {
    return std::string(what) + ": stats sizes differ";
  }
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    const auto& sa = a.stats[i];
    const auto& sb = b.stats[i];
    if (sa.nfi.count() != sb.nfi.count() || sa.nfi.mean() != sb.nfi.mean() ||
        sa.nfi.ci95_halfwidth() != sb.nfi.ci95_halfwidth() ||
        sa.ffi.count() != sb.ffi.count() || sa.ffi.mean() != sb.ffi.mean() ||
        sa.ffi.ci95_halfwidth() != sb.ffi.ci95_halfwidth()) {
      return std::string(what) + ": stats " + std::to_string(i) + " differ";
    }
  }
  return std::nullopt;
}

bool same_sweep_stats(const core::SweepStats& a, const core::SweepStats& b) {
  for (unsigned i = 0; i < core::kSweepStageCount; ++i) {
    if (a.stages[i].hits != b.stages[i].hits ||
        a.stages[i].misses != b.stages[i].misses) {
      return false;
    }
  }
  return a.evictions == b.evictions && a.bytes == b.bytes &&
         a.peak_bytes == b.peak_bytes;
}

TEST(SweepDiff, ReuseMatchesColdPath) {
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.05),
      [](const core::Study& s) -> std::optional<std::string> {
        core::SweepOptions reuse;
        core::SweepOptions cold;
        cold.reuse = false;
        const core::StudyResult a = core::run_study(s, reuse);
        const core::StudyResult b = core::run_study(s, cold);
        return expect_same_cells(a, b, "reuse vs cold");
      });
}

TEST(SweepDiff, TinyCacheMatchesDefaultAndCountsDeterministically) {
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.05),
      [](const core::Study& s) -> std::optional<std::string> {
        core::SweepOptions tiny;
        tiny.cache_bytes = 2048;  // evicts constantly
        const core::StudyResult a = core::run_study(s, tiny);
        const core::StudyResult b = core::run_study(s, core::SweepOptions{});
        if (auto err = expect_same_cells(a, b, "tiny cache vs default")) {
          return err;
        }
        // Cache counters are part of the determinism contract: the same
        // configuration must reproduce the same hit/miss/eviction stream.
        const core::StudyResult a2 = core::run_study(s, tiny);
        if (!same_sweep_stats(a.sweep, a2.sweep)) {
          return "tiny-cache sweep counters differ between identical runs";
        }
        return std::nullopt;
      });
}

TEST(SweepDiff, ThreadedMatchesSerial) {
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.05),
      [](const core::Study& s) -> std::optional<std::string> {
        core::SweepOptions serial;
        core::SweepOptions threaded;
        threaded.pool = &shared_pool();
        const core::StudyResult a = core::run_study(s, serial);
        const core::StudyResult b = core::run_study(s, threaded);
        if (auto err = expect_same_cells(a, b, "threaded vs serial")) {
          return err;
        }
        if (!same_sweep_stats(a.sweep, b.sweep)) {
          return "threaded sweep counters differ from serial";
        }
        return std::nullopt;
      });
}

TEST(SweepDiff, EveryThreadCountMatchesTheNoReuseOracle) {
  // The cell-graph scheduler at any width must agree bit-for-bit with
  // both the serial reuse engine and the from-scratch per-cell oracle,
  // and the replayed cache counters must not depend on the thread count.
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.03),
      [](const core::Study& s) -> std::optional<std::string> {
        static util::ThreadPool pool2(2);
        static util::ThreadPool pool8(8);
        core::SweepOptions oracle;
        oracle.reuse = false;
        const core::StudyResult base = core::run_study(s, oracle);
        const core::StudyResult serial =
            core::run_study(s, core::SweepOptions{});
        if (auto err = expect_same_cells(base, serial, "no-reuse vs serial")) {
          return err;
        }
        for (util::ThreadPool* pool : {&pool2, &shared_pool(), &pool8}) {
          core::SweepOptions threaded;
          threaded.pool = pool;
          const core::StudyResult t = core::run_study(s, threaded);
          const std::string what =
              "no-reuse vs " + std::to_string(pool->size()) + " threads";
          if (auto err = expect_same_cells(base, t, what.c_str())) {
            return err;
          }
          if (!same_sweep_stats(serial.sweep, t.sweep)) {
            return what + ": sweep counters depend on thread count";
          }
        }
        return std::nullopt;
      });
}

/// A fresh store directory for one property case (removed afterwards).
struct TempStoreDir {
  TempStoreDir() {
    char tmpl[] = "/tmp/sfcacd_pbt_store_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~TempStoreDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  core::ArtifactStoreOptions options() const {
    core::ArtifactStoreOptions o;
    o.dir = path;
    o.provenance = "pbt-fixed-build";
    return o;
  }
  std::string path;
};

TEST(SweepDiff, StoreRoundTripIsBitIdenticalAndWarmRunsHit) {
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.02),
      [](const core::Study& s) -> std::optional<std::string> {
        const TempStoreDir dir;
        if (dir.path.empty()) return std::string("mkdtemp failed");
        const core::StudyResult base =
            core::run_study(s, core::SweepOptions{});
        std::uint64_t spilled = 0;
        {
          core::ArtifactStore store(dir.options());
          core::SweepOptions cold;
          cold.store = &store;
          const core::StudyResult c = core::run_study(s, cold);
          if (auto err = expect_same_cells(base, c, "cold store run")) {
            return err;
          }
          if (store.stats().hits != 0) {
            return std::string("cold run hit a fresh store");
          }
          spilled = store.stats().spills;
        }
        if (spilled == 0) return std::string("cold run persisted nothing");
        {
          // Warm rerun (threaded, through a fresh store handle):
          // deserialized artifacts must fold bit-identically.
          core::ArtifactStore store(dir.options());
          core::SweepOptions warm;
          warm.store = &store;
          warm.pool = &shared_pool();
          const core::StudyResult w = core::run_study(s, warm);
          if (auto err = expect_same_cells(base, w, "warm store run")) {
            return err;
          }
          if (store.stats().hits == 0) {
            return std::string("warm run never hit the store");
          }
        }
        return std::nullopt;
      });
}

TEST(SweepDiff, CorruptedStoreFilesAreMissesNeverWrongAnswers) {
  SFCACD_PBT_CHECK_CFG(
      study_gen(), CheckConfig{}.scaled(0.02),
      [](const core::Study& s) -> std::optional<std::string> {
        namespace fs = std::filesystem;
        const TempStoreDir dir;
        if (dir.path.empty()) return std::string("mkdtemp failed");
        const core::StudyResult base =
            core::run_study(s, core::SweepOptions{});
        {
          core::ArtifactStore store(dir.options());
          core::SweepOptions cold;
          cold.store = &store;
          (void)core::run_study(s, cold);
        }
        // Vandalize every artifact: alternately truncate (mid-payload or
        // below the header) and flip a payload bit. A warm run over this
        // rubble must recompute and still match bit-for-bit.
        std::size_t i = 0;
        for (const auto& entry : fs::directory_iterator(dir.path)) {
          if (entry.path().extension() != ".sfcart") continue;
          const auto size = fs::file_size(entry.path());
          switch (i++ % 3) {
            case 0:
              fs::resize_file(entry.path(), size > 30 ? size - 13 : 0);
              break;
            case 1:
              fs::resize_file(entry.path(), 17);  // below the header
              break;
            default: {
              std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                               std::ios::binary);
              f.seekp(static_cast<std::streamoff>(size - 1));
              char byte = 0x5a;
              f.write(&byte, 1);
              break;
            }
          }
        }
        if (i == 0) return std::string("cold run wrote no artifacts");
        core::ArtifactStore store(dir.options());
        core::SweepOptions warm;
        warm.store = &store;
        const core::StudyResult w = core::run_study(s, warm);
        if (auto err = expect_same_cells(base, w, "corrupted store run")) {
          return err;
        }
        const core::ArtifactStore::Stats st = store.stats();
        if (st.corrupt == 0) {
          return std::string("no probe saw the corruption");
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace sfc::pbt
