// Unit tests for the thread pool and parallel reduction helpers.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace sfc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  parallel_for_chunks(pool, 0, kN, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(pool, 5, 5, 1,
                      [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  const std::uint64_t expected = kN * (kN - 1) / 2;
  const auto result = parallel_reduce_chunks(
      pool, 0, kN, 64, std::uint64_t{0}, [](std::size_t lo, std::size_t hi) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += i;
        return s;
      });
  EXPECT_EQ(result, expected);
}

TEST(ParallelReduce, RespectsInit) {
  ThreadPool pool(2);
  const auto result = parallel_reduce_chunks(
      pool, 0, 10, 1, std::uint64_t{1000},
      [](std::size_t lo, std::size_t hi) {
        return static_cast<std::uint64_t>(hi - lo);
      });
  EXPECT_EQ(result, 1010u);
}

TEST(ParallelReduce, SingleWorkerFallback) {
  ThreadPool pool(1);
  const auto result = parallel_reduce_chunks(
      pool, 0, 1000, 1, std::uint64_t{0}, [](std::size_t lo, std::size_t hi) {
        return static_cast<std::uint64_t>(hi - lo);
      });
  EXPECT_EQ(result, 1000u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace sfc::util
