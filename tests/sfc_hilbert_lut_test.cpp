// LUT Hilbert tests: bit-exact equivalence with the canonical recursion,
// and the usual curve invariants through the Curve<2> wrapper.
#include "sfc/hilbert_lut.hpp"

#include <gtest/gtest.h>

#include "sfc/canonical_hilbert.hpp"

namespace sfc {
namespace {

TEST(HilbertLut, MatchesCanonicalRecursionExhaustively) {
  for (unsigned level : {0u, 1u, 2u, 3u, 4u, 5u, 6u}) {
    const std::uint32_t side = 1u << level;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        const Point2 p = make_point(x, y);
        ASSERT_EQ(hilbert_lut_index(p, level),
                  canonical_hilbert_index(p, level))
            << "level " << level << " " << to_string(p);
      }
    }
    for (std::uint64_t i = 0; i < grid_size<2>(level); ++i) {
      ASSERT_EQ(hilbert_lut_point(i, level), canonical_hilbert_point(i, level))
          << "level " << level << " index " << i;
    }
  }
}

TEST(HilbertLut, MatchesCanonicalSampledAtLargeLevel) {
  constexpr unsigned kLevel = 20;
  std::uint64_t state = 4242;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 40) & ((1u << kLevel) - 1);
  };
  for (int i = 0; i < 5000; ++i) {
    const Point2 p = make_point(next(), next());
    const std::uint64_t lut = hilbert_lut_index(p, kLevel);
    ASSERT_EQ(lut, canonical_hilbert_index(p, kLevel));
    ASSERT_EQ(hilbert_lut_point(lut, kLevel), p);
  }
}

TEST(HilbertLut, CurveWrapperIsContinuous) {
  const HilbertLutCurve curve;
  for (unsigned level : {1u, 3u, 5u}) {
    Point2 prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < grid_size<2>(level); ++i) {
      const Point2 cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u);
      prev = cur;
    }
  }
}

TEST(HilbertLut, CurveWrapperRoundTrips) {
  const HilbertLutCurve curve;
  constexpr unsigned kLevel = 8;
  const std::uint32_t side = 1u << kLevel;
  for (std::uint32_t y = 0; y < side; y += 3) {
    for (std::uint32_t x = 0; x < side; x += 3) {
      const Point2 p = make_point(x, y);
      ASSERT_EQ(curve.point(curve.index(p, kLevel), kLevel), p);
    }
  }
}

TEST(HilbertLut, PinnedEndpoints) {
  for (unsigned level = 1; level <= 12; ++level) {
    EXPECT_EQ(hilbert_lut_point(0, level), make_point(0, 0));
    EXPECT_EQ(hilbert_lut_point(grid_size<2>(level) - 1, level),
              make_point((1u << level) - 1, 0));
  }
}

}  // namespace
}  // namespace sfc
