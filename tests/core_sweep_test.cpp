// Sweep-engine tests at toy scale: the artifact-reusing path must be
// bit-identical to evaluating every cell from scratch, the cache
// counters must match the grid combinatorics exactly (traffic is
// deterministic — all of it happens on the coordinating thread in grid
// order), and eviction under a tiny byte budget must change only the
// accounting, never the results.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace sfc::core {
namespace {

// --------------------------------------------------------------- fixtures

/// Table I in miniature: full {particle x processor} curve cross product,
/// two distributions, one torus, both interaction models.
Study toy_combination_study() {
  Study s;
  s.name = "toy_combination";
  s.particles = 900;
  s.level = 5;  // 32 x 32
  s.radius = 1;
  s.seed = 11;
  s.trials = 1;
  s.distributions = {dist::DistKind::kUniform, dist::DistKind::kNormal};
  s.particle_curves = {CurveKind::kHilbert, CurveKind::kMorton,
                       CurveKind::kRowMajor};
  s.processor_curves = s.particle_curves;
  s.topologies = {topo::TopologyKind::kTorus};
  s.proc_counts = {64};
  return s;
}

/// Figure 6 in miniature: paired curves, a topology axis that mixes
/// ranked (mesh, torus) and naturally-labeled (quadtree, hypercube)
/// networks.
Study toy_topology_study() {
  Study s;
  s.name = "toy_topology";
  s.particles = 900;
  s.level = 5;
  s.radius = 1;
  s.seed = 11;
  s.trials = 1;
  s.distributions = {dist::DistKind::kUniform};
  s.particle_curves = {CurveKind::kHilbert, CurveKind::kMorton,
                       CurveKind::kRowMajor};
  s.processor_curves.clear();  // paired mode
  s.topologies = {topo::TopologyKind::kMesh, topo::TopologyKind::kTorus,
                  topo::TopologyKind::kQuadtree,
                  topo::TopologyKind::kHypercube};
  s.proc_counts = {64};
  return s;
}

void expect_bit_identical(const StudyResult& a, const StudyResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    // Bit-level equality, not tolerance: folds sum exact integers and the
    // float accumulation order is the same on both paths.
    EXPECT_EQ(std::memcmp(&a.cells[i], &b.cells[i], sizeof(AcdCell)), 0)
        << "cell " << i << ": (" << a.cells[i].nfi_acd << ", "
        << a.cells[i].ffi_acd << ") vs (" << b.cells[i].nfi_acd << ", "
        << b.cells[i].ffi_acd << ")";
  }
}

// --------------------------------------------------------- cache plumbing

TEST(ArtifactCache, CountsHitsAndMisses) {
  ArtifactCache cache(1 << 20);
  int builds = 0;
  auto make = [&builds] {
    ++builds;
    return std::pair{std::make_shared<const int>(42), sizeof(int)};
  };
  const auto a = cache.get<int>(SweepStage::kSample, 7, make);
  const auto b = cache.get<int>(SweepStage::kSample, 7, make);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().stage(SweepStage::kSample).misses, 1u);
  EXPECT_EQ(cache.stats().stage(SweepStage::kSample).hits, 1u);
}

TEST(ArtifactCache, SameKeyDifferentStageIsDistinct) {
  ArtifactCache cache(1 << 20);
  auto make1 = [] {
    return std::pair{std::make_shared<const int>(1), sizeof(int)};
  };
  auto make2 = [] {
    return std::pair{std::make_shared<const int>(2), sizeof(int)};
  };
  const auto a = cache.get<int>(SweepStage::kSample, 7, make1);
  const auto b = cache.get<int>(SweepStage::kInstance, 7, make2);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().total_misses(), 2u);
  EXPECT_EQ(cache.stats().total_hits(), 0u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedWithinBudget) {
  // Budget fits two 100-byte artifacts; inserting a third evicts the
  // coldest. Touching key 1 between inserts protects it.
  ArtifactCache cache(200);
  auto make = [](int v) {
    return [v] {
      return std::pair{std::make_shared<const int>(v), std::size_t{100}};
    };
  };
  cache.get<int>(SweepStage::kSample, 1, make(1));
  cache.get<int>(SweepStage::kSample, 2, make(2));
  cache.get<int>(SweepStage::kSample, 1, make(1));  // 1 becomes MRU
  cache.get<int>(SweepStage::kSample, 3, make(3));  // evicts 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes, 200u);
  cache.get<int>(SweepStage::kSample, 1, make(1));
  EXPECT_EQ(cache.stats().stage(SweepStage::kSample).hits, 2u);
  cache.get<int>(SweepStage::kSample, 2, make(2));  // was evicted: a miss
  EXPECT_EQ(cache.stats().stage(SweepStage::kSample).misses, 4u);
}

TEST(ArtifactCache, OversizedArtifactStaysResidentAlone) {
  ArtifactCache cache(10);
  auto big = [] {
    return std::pair{std::make_shared<const int>(9), std::size_t{1000}};
  };
  const auto kept = cache.get<int>(SweepStage::kSample, 1, big);
  EXPECT_EQ(*kept, 9);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().bytes, 1000u);
  // The next insert evicts it (it is then the cold entry).
  cache.get<int>(SweepStage::kSample, 2, big);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ArtifactCache, PinnedPointerSurvivesEviction) {
  ArtifactCache cache(100);
  auto make = [](int v) {
    return [v] {
      return std::pair{std::make_shared<const int>(v), std::size_t{100}};
    };
  };
  const auto pinned = cache.get<int>(SweepStage::kSample, 1, make(5));
  cache.get<int>(SweepStage::kSample, 2, make(6));  // evicts key 1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(*pinned, 5);  // shared ownership keeps the artifact alive
}

// ------------------------------------------------------------ equivalence

TEST(SweepEngine, CombinationGridMatchesDirectBitForBit) {
  const Study s = toy_combination_study();
  const SweepOptions reuse{nullptr, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions direct{nullptr, kDefaultSweepCacheBytes, false, {}};
  expect_bit_identical(run_study(s, reuse), run_study(s, direct));
}

TEST(SweepEngine, TopologyGridMatchesDirectBitForBit) {
  const Study s = toy_topology_study();
  const SweepOptions reuse{nullptr, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions direct{nullptr, kDefaultSweepCacheBytes, false, {}};
  expect_bit_identical(run_study(s, reuse), run_study(s, direct));
}

TEST(SweepEngine, MultiTrialMatchesDirectBitForBit) {
  Study s = toy_combination_study();
  s.trials = 3;
  s.distributions = {dist::DistKind::kExponential};
  const SweepOptions reuse{nullptr, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions direct{nullptr, kDefaultSweepCacheBytes, false, {}};
  const auto a = run_study(s, reuse);
  const auto b = run_study(s, direct);
  expect_bit_identical(a, b);
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.stats[i].nfi.ci95_halfwidth(),
                     b.stats[i].nfi.ci95_halfwidth());
    EXPECT_DOUBLE_EQ(a.stats[i].ffi.ci95_halfwidth(),
                     b.stats[i].ffi.ci95_halfwidth());
  }
}

TEST(SweepEngine, SparseHistogramsMatchDirectBitForBit) {
  // p = 4096 pushes the rank-pair accumulators past the dense p² budget
  // into the sorted-sparse representation — the paper-scale (p = 65536)
  // regime — so the canonical-order enumeration must also reproduce the
  // staged/compacted path bit-for-bit, including ranks with no
  // particles (p greatly exceeds n here).
  Study s = toy_combination_study();
  s.distributions = {dist::DistKind::kUniform};
  s.proc_counts = {4096};
  const SweepOptions reuse{nullptr, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions direct{nullptr, kDefaultSweepCacheBytes, false, {}};
  expect_bit_identical(run_study(s, reuse), run_study(s, direct));
}

TEST(SweepEngine, ThreadedFoldsMatchSerialBitForBit) {
  const Study s = toy_topology_study();
  util::ThreadPool pool(4);
  const SweepOptions threaded{&pool, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions serial{nullptr, kDefaultSweepCacheBytes, true, {}};
  expect_bit_identical(run_study(s, threaded), run_study(s, serial));
}

TEST(SweepEngine, ScalingAxisMatchesDirectBitForBit) {
  Study s = toy_topology_study();
  s.name = "toy_scaling";
  s.topologies = {topo::TopologyKind::kTorus};
  s.proc_counts = {16, 64, 256};
  const SweepOptions reuse{nullptr, kDefaultSweepCacheBytes, true, {}};
  const SweepOptions direct{nullptr, kDefaultSweepCacheBytes, false, {}};
  expect_bit_identical(run_study(s, reuse), run_study(s, direct));
}

// ------------------------------------------------------- cache accounting

TEST(SweepEngine, CombinationGridCacheCounts) {
  // 2 distributions x 3 particle curves x 3 processor curves x 1 torus:
  //   sample:    1 build per distribution, consumed once by canonical
  //   canonical: cell-sorted copy + grid, 1 per distribution
  //   ordering:  rank table per (distribution, curve), held per row —
  //              reuse happens through the held pointer, not the cache
  //   instance:  every (distribution, curve) pair is distinct (FFI tree)
  //   histograms: built once per (distribution, particle curve), reused
  //              across the 3 processor orders
  //   topology:  the torus is ranked, so one build per processor curve,
  //              shared across distributions and particle curves
  //   fold:      one per cell per enabled model, never cached
  const Study s = toy_combination_study();
  const auto run = run_study(s, SweepOptions{});
  const SweepStats& st = run.sweep;
  EXPECT_EQ(st.stage(SweepStage::kSample).misses, 2u);
  EXPECT_EQ(st.stage(SweepStage::kSample).hits, 0u);
  EXPECT_EQ(st.stage(SweepStage::kCanonical).misses, 2u);
  EXPECT_EQ(st.stage(SweepStage::kCanonical).hits, 0u);
  EXPECT_EQ(st.stage(SweepStage::kOrdering).misses, 6u);
  EXPECT_EQ(st.stage(SweepStage::kOrdering).hits, 0u);
  EXPECT_EQ(st.stage(SweepStage::kInstance).misses, 6u);
  EXPECT_EQ(st.stage(SweepStage::kInstance).hits, 0u);
  EXPECT_EQ(st.stage(SweepStage::kNfiHistogram).misses, 6u);
  EXPECT_EQ(st.stage(SweepStage::kNfiHistogram).hits, 12u);
  EXPECT_EQ(st.stage(SweepStage::kFfiHistogram).misses, 6u);
  EXPECT_EQ(st.stage(SweepStage::kFfiHistogram).hits, 12u);
  EXPECT_EQ(st.stage(SweepStage::kTopology).misses, 3u);
  EXPECT_EQ(st.stage(SweepStage::kTopology).hits, 15u);
  EXPECT_EQ(st.stage(SweepStage::kFold).misses, 36u);
  EXPECT_EQ(st.stage(SweepStage::kFold).hits, 0u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_GT(st.peak_bytes, 0u);
  EXPECT_LE(st.bytes, st.peak_bytes);
}

TEST(SweepEngine, TopologyGridCacheCounts) {
  // 3 paired curves x 4 topologies: histograms are topology-independent
  // (1 build + 3 hits per curve); mesh and torus embed an SFC ranking so
  // they rebuild per curve, while quadtree and hypercube are shared.
  const Study s = toy_topology_study();
  const auto run = run_study(s, SweepOptions{});
  const SweepStats& st = run.sweep;
  EXPECT_EQ(st.stage(SweepStage::kSample).misses, 1u);
  EXPECT_EQ(st.stage(SweepStage::kSample).hits, 0u);
  EXPECT_EQ(st.stage(SweepStage::kCanonical).misses, 1u);
  EXPECT_EQ(st.stage(SweepStage::kOrdering).misses, 3u);
  EXPECT_EQ(st.stage(SweepStage::kInstance).misses, 3u);
  EXPECT_EQ(st.stage(SweepStage::kNfiHistogram).misses, 3u);
  EXPECT_EQ(st.stage(SweepStage::kNfiHistogram).hits, 9u);
  EXPECT_EQ(st.stage(SweepStage::kFfiHistogram).misses, 3u);
  EXPECT_EQ(st.stage(SweepStage::kFfiHistogram).hits, 9u);
  EXPECT_EQ(st.stage(SweepStage::kTopology).misses, 8u);
  EXPECT_EQ(st.stage(SweepStage::kTopology).hits, 4u);
  EXPECT_EQ(st.stage(SweepStage::kFold).misses, 24u);
}

TEST(SweepEngine, DirectPathReportsNoCacheTraffic) {
  const Study s = toy_topology_study();
  SweepOptions direct;
  direct.reuse = false;
  const auto run = run_study(s, direct);
  EXPECT_EQ(run.sweep.total_hits(), 0u);
  EXPECT_EQ(run.sweep.total_misses(), 0u);
  EXPECT_EQ(run.sweep.peak_bytes, 0u);
}

TEST(SweepEngine, TinyBudgetEvictsButNeverChangesResults) {
  const Study s = toy_combination_study();
  SweepOptions starved;
  starved.cache_bytes = 1024;  // far below any single artifact
  const auto a = run_study(s, starved);
  EXPECT_GT(a.sweep.evictions, 0u);
  const auto b = run_study(s, SweepOptions{});
  EXPECT_EQ(b.sweep.evictions, 0u);
  expect_bit_identical(a, b);
  // Starvation costs extra builds, never correctness: with everything
  // evicted, hit counts can only drop.
  EXPECT_LE(a.sweep.total_hits(), b.sweep.total_hits());
  EXPECT_GE(a.sweep.total_misses(), b.sweep.total_misses());
}

// ---------------------------------------------------------- result shape

TEST(SweepEngine, ProgressVisitsEveryCellInGridOrder) {
  Study s = toy_topology_study();
  s.trials = 2;
  std::vector<StudyCellRef> seen;
  SweepOptions options;
  options.progress = [&seen](const StudyCellRef& ref, double elapsed_ms) {
    EXPECT_GE(elapsed_ms, 0.0);
    seen.push_back(ref);
  };
  const auto run = run_study(s, options);
  ASSERT_EQ(seen.size(), s.cell_count() * s.trials);
  // Paired mode reports the particle curve as the processor curve.
  for (const StudyCellRef& ref : seen) {
    EXPECT_EQ(ref.processor_curve, ref.particle_curve);
  }
  // Grid order: topology is the innermost axis, trials outermost per
  // distribution — identical to the direct path's visit order.
  std::vector<StudyCellRef> direct_seen;
  options.reuse = false;
  options.progress = [&direct_seen](const StudyCellRef& ref, double) {
    direct_seen.push_back(ref);
  };
  run_study(s, options);
  ASSERT_EQ(direct_seen.size(), seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].distribution, direct_seen[i].distribution);
    EXPECT_EQ(seen[i].trial, direct_seen[i].trial);
    EXPECT_EQ(seen[i].particle_curve, direct_seen[i].particle_curve);
    EXPECT_EQ(seen[i].proc_count, direct_seen[i].proc_count);
    EXPECT_EQ(seen[i].topology, direct_seen[i].topology);
  }
}

TEST(SweepEngine, NearFieldOnlySkipsFfiStages) {
  Study s = toy_combination_study();
  s.far_field = false;
  const auto run = run_study(s, SweepOptions{});
  EXPECT_EQ(run.sweep.stage(SweepStage::kFfiHistogram).misses, 0u);
  EXPECT_EQ(run.sweep.stage(SweepStage::kFfiHistogram).hits, 0u);
  // Only the FFI tree walk needs a curve-sorted instance, so a
  // near-field-only study never builds one.
  EXPECT_EQ(run.sweep.stage(SweepStage::kInstance).misses, 0u);
  EXPECT_EQ(run.sweep.stage(SweepStage::kInstance).hits, 0u);
  EXPECT_EQ(run.sweep.stage(SweepStage::kFold).misses, 18u);
  for (const AcdCell& cell : run.cells) {
    EXPECT_EQ(cell.ffi_acd, 0.0);
    EXPECT_GT(cell.nfi_acd, 0.0);
  }
}

TEST(SweepEngine, ResultsAndOrderingIdenticalAcrossThreadCounts) {
  // The pool is a pure wall-clock lever: any thread count must reproduce
  // the serial run exactly — the result cells, the across-trial
  // statistics, the cache-counter stream, and the order in which cells
  // are reported to the progress sink.
  Study s = toy_combination_study();
  s.trials = 2;

  struct RunCapture {
    StudyResult result;
    std::vector<StudyCellRef> progress;
  };
  auto run_with = [&s](util::ThreadPool* pool) {
    RunCapture cap;
    SweepOptions options;
    options.pool = pool;
    options.progress = [&cap](const StudyCellRef& ref, double) {
      cap.progress.push_back(ref);
    };
    cap.result = run_study(s, options);
    return cap;
  };

  const RunCapture serial = run_with(nullptr);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const RunCapture threaded = run_with(&pool);
    expect_bit_identical(threaded.result, serial.result);
    for (std::size_t i = 0; i < serial.result.stats.size(); ++i) {
      EXPECT_EQ(threaded.result.stats[i].nfi.mean(),
                serial.result.stats[i].nfi.mean())
          << threads << " threads, stat " << i;
      EXPECT_EQ(threaded.result.stats[i].ffi.ci95_halfwidth(),
                serial.result.stats[i].ffi.ci95_halfwidth());
    }
    for (unsigned st = 0; st < kSweepStageCount; ++st) {
      EXPECT_EQ(threaded.result.sweep.stages[st].hits,
                serial.result.sweep.stages[st].hits)
          << threads << " threads, stage " << st;
      EXPECT_EQ(threaded.result.sweep.stages[st].misses,
                serial.result.sweep.stages[st].misses);
    }
    EXPECT_EQ(threaded.result.sweep.evictions, serial.result.sweep.evictions);
    ASSERT_EQ(threaded.progress.size(), serial.progress.size())
        << threads << " threads";
    for (std::size_t i = 0; i < serial.progress.size(); ++i) {
      EXPECT_EQ(threaded.progress[i].distribution,
                serial.progress[i].distribution);
      EXPECT_EQ(threaded.progress[i].trial, serial.progress[i].trial);
      EXPECT_EQ(threaded.progress[i].particle_curve,
                serial.progress[i].particle_curve);
      EXPECT_EQ(threaded.progress[i].proc_count,
                serial.progress[i].proc_count);
      EXPECT_EQ(threaded.progress[i].processor_curve,
                serial.progress[i].processor_curve);
      EXPECT_EQ(threaded.progress[i].topology, serial.progress[i].topology);
    }
  }
}

// ------------------------------------------------------- dynamics caching

/// Small dynamics trajectory for the kDelta-stage cache tests: torus
/// sizes must be powers of 4, and the step count stays low because every
/// step runs three policies over the full configuration.
DynamicsStudy toy_dynamics_study() {
  DynamicsStudy s;
  s.name = "toy_dynamics";
  s.particles = 400;
  s.level = 5;  // 32 x 32
  s.procs = 16;
  s.steps = 8;
  s.seed = 11;
  s.move_fraction = 0.2;
  return s;
}

void expect_same_steps(const DynamicsResult& a, const DynamicsResult& b,
                       std::size_t prefix) {
  ASSERT_GE(a.steps.size(), prefix);
  ASSERT_GE(b.steps.size(), prefix);
  for (std::size_t t = 0; t < prefix; ++t) {
    // Bit-level equality: a cached replay must reproduce the live run's
    // integers exactly, not approximately.
    EXPECT_EQ(std::memcmp(&a.steps[t], &b.steps[t],
                          sizeof(DynamicsStepResult)),
              0)
        << "step " << t;
  }
}

TEST(DynamicsEngine, CachedReplayIsBitIdenticalAndAllHits) {
  const DynamicsStudy s = toy_dynamics_study();
  const DynamicsResult live = run_dynamics(s, DynamicsOptions{});
  EXPECT_EQ(live.sweep.total_hits(), 0u);  // no cache supplied
  EXPECT_EQ(live.sweep.total_misses(), 0u);

  ArtifactCache cache(1 << 22);
  DynamicsOptions cached;
  cached.cache = &cache;
  const DynamicsResult first = run_dynamics(s, cached);
  EXPECT_EQ(first.sweep.stage(SweepStage::kDelta).misses, 8u);
  EXPECT_EQ(first.sweep.stage(SweepStage::kDelta).hits, 0u);
  expect_same_steps(live, first, 8);

  // Identical study, same cache: every step replays from the store
  // (stats are cumulative across the cache's lifetime).
  const DynamicsResult replay = run_dynamics(s, cached);
  EXPECT_EQ(replay.sweep.stage(SweepStage::kDelta).misses, 8u);
  EXPECT_EQ(replay.sweep.stage(SweepStage::kDelta).hits, 8u);
  expect_same_steps(live, replay, 8);
}

TEST(DynamicsEngine, ExtendedTrajectoryReplaysCachedPrefix) {
  const DynamicsStudy s = toy_dynamics_study();
  ArtifactCache cache(1 << 22);
  DynamicsOptions cached;
  cached.cache = &cache;
  const DynamicsResult short_run = run_dynamics(s, cached);

  // Extending the same trajectory hits the 8 cached steps and computes
  // only the 8 new ones; the shared prefix is bit-identical.
  DynamicsStudy longer = s;
  longer.steps = 16;
  const DynamicsResult long_run = run_dynamics(longer, cached);
  EXPECT_EQ(long_run.sweep.stage(SweepStage::kDelta).hits, 8u);
  EXPECT_EQ(long_run.sweep.stage(SweepStage::kDelta).misses, 16u);
  expect_same_steps(short_run, long_run, 8);

  // A different move fraction forks the move-set chain: nothing reuses.
  DynamicsStudy forked = s;
  forked.move_fraction = 0.4;
  const DynamicsResult fork_run = run_dynamics(forked, cached);
  EXPECT_EQ(fork_run.sweep.stage(SweepStage::kDelta).hits, 8u);
  EXPECT_EQ(fork_run.sweep.stage(SweepStage::kDelta).misses, 24u);
}

TEST(SweepEngine, InvalidTorusSizeThrows) {
  Study s = toy_topology_study();
  s.topologies = {topo::TopologyKind::kTorus};
  s.proc_counts = {60};  // not a power of 4
  EXPECT_THROW(run_study(s, SweepOptions{}), std::invalid_argument);
  SweepOptions direct;
  direct.reuse = false;
  EXPECT_THROW(run_study(s, direct), std::invalid_argument);
}

}  // namespace
}  // namespace sfc::core
