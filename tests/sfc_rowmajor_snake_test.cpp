// Scan-order curve tests: row-major / column-major formulas and the snake
// scan's continuity.
#include <gtest/gtest.h>

#include "sfc/rowmajor.hpp"

namespace sfc {
namespace {

TEST(RowMajor, FormulaMatches) {
  const RowMajorCurve<2> curve;
  for (unsigned level : {1u, 2u, 3u, 5u}) {
    const std::uint32_t side = 1u << level;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        ASSERT_EQ(curve.index(make_point(x, y), level),
                  static_cast<std::uint64_t>(y) * side + x);
      }
    }
  }
}

TEST(ColumnMajor, FormulaMatches) {
  const ColumnMajorCurve<2> curve;
  for (unsigned level : {1u, 2u, 3u, 5u}) {
    const std::uint32_t side = 1u << level;
    for (std::uint32_t y = 0; y < side; ++y) {
      for (std::uint32_t x = 0; x < side; ++x) {
        ASSERT_EQ(curve.index(make_point(x, y), level),
                  static_cast<std::uint64_t>(x) * side + y);
      }
    }
  }
}

TEST(ColumnMajor, IsTransposeOfRowMajor) {
  const RowMajorCurve<2> row;
  const ColumnMajorCurve<2> col;
  constexpr unsigned kLevel = 4;
  const std::uint32_t side = 1u << kLevel;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      ASSERT_EQ(col.index(make_point(x, y), kLevel),
                row.index(make_point(y, x), kLevel));
    }
  }
}

TEST(Snake, IsContinuousEverywhere) {
  const SnakeCurve<2> curve;
  for (unsigned level : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const std::uint64_t n = grid_size<2>(level);
    Point2 prev = curve.point(0, level);
    for (std::uint64_t i = 1; i < n; ++i) {
      const Point2 cur = curve.point(i, level);
      ASSERT_EQ(manhattan(prev, cur), 1u)
          << "level " << level << " index " << i;
      prev = cur;
    }
  }
}

TEST(Snake, KnownOrderAtLevel1) {
  // Row 0 left-to-right, row 1 right-to-left.
  const SnakeCurve<2> curve;
  EXPECT_EQ(curve.point(0, 1), make_point(0, 0));
  EXPECT_EQ(curve.point(1, 1), make_point(1, 0));
  EXPECT_EQ(curve.point(2, 1), make_point(1, 1));
  EXPECT_EQ(curve.point(3, 1), make_point(0, 1));
}

TEST(Snake, KnownOrderAtLevel2) {
  const SnakeCurve<2> curve;
  // Row 0: (0..3, 0); row 1 reversed: (3..0, 1).
  EXPECT_EQ(curve.index(make_point(3, 0), 2), 3u);
  EXPECT_EQ(curve.index(make_point(3, 1), 2), 4u);
  EXPECT_EQ(curve.index(make_point(0, 1), 2), 7u);
  EXPECT_EQ(curve.index(make_point(0, 2), 2), 8u);
}

TEST(Snake, AgreesWithRowMajorOnEvenRows) {
  const SnakeCurve<2> snake;
  const RowMajorCurve<2> row;
  constexpr unsigned kLevel = 4;
  const std::uint32_t side = 1u << kLevel;
  for (std::uint32_t y = 0; y < side; y += 2) {
    for (std::uint32_t x = 0; x < side; ++x) {
      ASSERT_EQ(snake.index(make_point(x, y), kLevel),
                row.index(make_point(x, y), kLevel));
    }
  }
}

TEST(ScanOrders, RowMajorVerticalNeighborsStretchBySide) {
  // The property behind the (N+1)/2 ANNS closed form.
  const RowMajorCurve<2> curve;
  constexpr unsigned kLevel = 5;
  const std::uint32_t side = 1u << kLevel;
  for (std::uint32_t y = 0; y + 1 < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const auto a = curve.index(make_point(x, y), kLevel);
      const auto b = curve.index(make_point(x, y + 1), kLevel);
      ASSERT_EQ(b - a, side);
    }
  }
}

}  // namespace
}  // namespace sfc
