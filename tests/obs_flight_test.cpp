// Flight recorder tests: deterministic ring/stage behavior via the
// explicit-timestamp hooks, and the crash path end-to-end — a forked
// child takes a real SIGSEGV and the parent validates the report it
// left behind (balanced B/E spans, schema marker, build provenance).
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sfc::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Extract the integer value of `"key":` inside the object that starts
/// at the first occurrence of `"name":{`.
std::uint64_t stage_field(const std::string& json, const std::string& name,
                          const std::string& key) {
  const auto start = json.find('"' + name + "\":{");
  EXPECT_NE(start, std::string::npos) << name << " missing in " << json;
  if (start == std::string::npos) return 0;
  const auto kpos = json.find('"' + key + "\":", start);
  EXPECT_NE(kpos, std::string::npos) << key << " missing in " << json;
  if (kpos == std::string::npos) return 0;
  return std::stoull(json.substr(kpos + key.size() + 3));
}

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().set_enabled(false);
    FlightRecorder::instance().clear();
  }
  void TearDown() override {
    FlightRecorder::instance().set_enabled(false);
    FlightRecorder::instance().clear();
  }
};

TEST_F(FlightTest, DisabledSpansRecordNothing) {
  const std::uint64_t before = FlightRecorder::instance().recorded();
  {
    const Span span("flight/disabled");
  }
  EXPECT_EQ(FlightRecorder::instance().recorded(), before);
}

TEST_F(FlightTest, EnabledSpansFeedTheRing) {
  FlightRecorder::instance().set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    const Span span("flight/enabled");
  }
  FlightRecorder::instance().set_enabled(false);
  EXPECT_EQ(FlightRecorder::instance().recorded(), 5u);
  const std::string rings = FlightRecorder::instance().rings_json();
  EXPECT_EQ(count_occurrences(rings, "\"name\":\"flight/enabled\""), 5u)
      << rings;
}

TEST_F(FlightTest, RingWrapsToNewestCapacitySpans) {
  FlightRecorder& rec = FlightRecorder::instance();
  // Drive the hooks directly with a fake clock: 5 "old" spans, then
  // capacity + 2 "new" ones. Only the newest kRingCapacity survive.
  std::uint64_t t = 1000;
  for (int i = 0; i < 5; ++i) {
    rec.begin_span("flight/old", t);
    rec.end_span(t + 10);
    t += 100;
  }
  for (std::size_t i = 0; i < FlightRecorder::kRingCapacity + 2; ++i) {
    rec.begin_span("flight/new", t);
    rec.end_span(t + 10);
    t += 100;
  }
  EXPECT_EQ(rec.recorded(), 5 + FlightRecorder::kRingCapacity + 2);
  const std::string rings = rec.rings_json();
  EXPECT_EQ(count_occurrences(rings, "\"name\":\"flight/new\""),
            FlightRecorder::kRingCapacity)
      << rings;
  EXPECT_EQ(count_occurrences(rings, "\"name\":\"flight/old\""), 0u)
      << rings;
}

TEST_F(FlightTest, StageProfileSplitsSelfFromChildTime) {
  FlightRecorder& rec = FlightRecorder::instance();
  // outer: [100, 400) = 300 ns total; inner: [200, 250) = 50 ns. Self
  // time of outer must be exactly 250 (child time excluded).
  rec.begin_span("flight/outer", 100);
  rec.begin_span("flight/inner", 200);
  rec.end_span(250);
  rec.end_span(400);

  const std::string profile = rec.stage_profile_json();
  EXPECT_EQ(stage_field(profile, "flight/outer", "count"), 1u);
  EXPECT_EQ(stage_field(profile, "flight/outer", "total_ns"), 300u);
  EXPECT_EQ(stage_field(profile, "flight/outer", "self_ns"), 250u);
  EXPECT_EQ(stage_field(profile, "flight/inner", "total_ns"), 50u);
  EXPECT_EQ(stage_field(profile, "flight/inner", "self_ns"), 50u);
}

TEST_F(FlightTest, StageProfileAccumulatesRepeatsBeyondTheRing) {
  FlightRecorder& rec = FlightRecorder::instance();
  // Twice the ring capacity: the ring forgets, the profile must not.
  const std::size_t n = 2 * FlightRecorder::kRingCapacity;
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rec.begin_span("flight/repeat", t);
    rec.end_span(t + 7);
    t += 10;
  }
  const std::string profile = rec.stage_profile_json();
  EXPECT_EQ(stage_field(profile, "flight/repeat", "count"), n);
  EXPECT_EQ(stage_field(profile, "flight/repeat", "total_ns"), 7 * n);
}

// ------------------------------------------------------------- crash path

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void expect_valid_report(const std::string& report, int sig,
                         const char* sig_name) {
  EXPECT_NE(report.find("\"schema\":\"sfcacd-crash-report-v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"signal\":" + std::to_string(sig)),
            std::string::npos);
  EXPECT_NE(report.find(std::string("\"signal_name\":\"") + sig_name),
            std::string::npos);
  EXPECT_NE(report.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(report.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(report.find("\"flight\":{"), std::string::npos);
  // Balanced spans: every begin has its end.
  const std::size_t begins = count_occurrences(report, "\"ph\":\"B\"");
  const std::size_t ends = count_occurrences(report, "\"ph\":\"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

/// Fork, run `child` (which must terminate the process), and return the
/// child's wait status.
template <typename Fn>
int run_in_child(Fn&& child) {
  const pid_t pid = fork();
  if (pid == 0) {
    child();
    _exit(97);  // the child body was expected to terminate the process
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

TEST_F(FlightTest, ForkedChildSigsegvLeavesValidCrashReport) {
  const std::string path = "obs_flight_segv_report.json";
  std::remove(path.c_str());

  const int status = run_in_child([&path] {
    FlightRecorder::instance().install_crash_handler(path);
    {
      const Span outer("crash/outer");
      const Span inner("crash/inner");
    }
    const Span open_at_crash("crash/open");
    ::raise(SIGSEGV);
  });

  // The handler wrote the report, then re-raised with the default
  // disposition: the child must have died of SIGSEGV, not exited.
  ASSERT_TRUE(WIFSIGNALED(status)) << "status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  const std::string report = slurp(path);
  ASSERT_FALSE(report.empty()) << "no crash report at " << path;
  expect_valid_report(report, SIGSEGV, "SIGSEGV");
  // The completed spans are in the ring; the still-open one is not (the
  // ring holds completed spans only — openness never unbalances it).
  EXPECT_NE(report.find("crash/outer"), std::string::npos);
  EXPECT_NE(report.find("crash/inner"), std::string::npos);
  EXPECT_EQ(report.find("crash/open"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FlightTest, SigtermDumpEmbedsThePublishedMetricsSnapshot) {
  const std::string path = "obs_flight_term_report.json";
  std::remove(path.c_str());

  const int status = run_in_child([&path] {
    FlightRecorder::instance().install_crash_handler(path);
    Registry::instance().counter("crash.term.counter").add(123);
    FlightRecorder::instance().publish_metrics_snapshot(
        Registry::instance().json());
    {
      const Span span("crash/term");
    }
    ::raise(SIGTERM);
  });

  ASSERT_TRUE(WIFSIGNALED(status)) << "status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
  const std::string report = slurp(path);
  ASSERT_FALSE(report.empty());
  expect_valid_report(report, SIGTERM, "SIGTERM");
  EXPECT_NE(report.find("\"crash.term.counter\":123"), std::string::npos)
      << report;
  std::remove(path.c_str());
}

TEST_F(FlightTest, WriteCrashReportIsCallableWithoutASignal) {
  // SIGTERM-style graceful paths (and this test) can dump directly.
  const std::string path = "obs_flight_direct_report.json";
  std::remove(path.c_str());
  FlightRecorder& rec = FlightRecorder::instance();
  rec.install_crash_handler(path);
  rec.begin_span("flight/direct", 10);
  rec.end_span(20);
  ASSERT_TRUE(rec.write_crash_report(SIGTERM));
  EXPECT_EQ(rec.crash_report_path(), path);
  const std::string report = slurp(path);
  expect_valid_report(report, SIGTERM, "SIGTERM");
  EXPECT_NE(report.find("flight/direct"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sfc::obs
