// Unit tests for the persistent artifact store: crash-safe writes,
// validated mmap reads, and the contract that every failure mode —
// absent file, truncation, bit rot, version skew, foreign build — is a
// silent miss, never an error.
#include "core/artifact_store.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace sfc::core {
namespace {

namespace fs = std::filesystem;

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sfcacd_store_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ArtifactStoreOptions options(std::string provenance = "test-build") const {
    ArtifactStoreOptions o;
    o.dir = dir_;
    o.provenance = std::move(provenance);
    return o;
  }

  /// The single .sfcart file for `stage` in the store directory (the
  /// corruption tests rewrite it in place).
  fs::path only_artifact_file() const {
    fs::path found;
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".sfcart") {
        found = entry.path();
        ++count;
      }
    }
    EXPECT_EQ(count, 1u);
    return found;
  }

  static std::vector<std::uint8_t> payload(std::size_t n,
                                           std::uint8_t fill = 7) {
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(fill + i);
    }
    return out;
  }

  std::string dir_;
};

TEST_F(ArtifactStoreTest, SaveThenLoadRoundTrips) {
  ArtifactStore store(options());
  const auto bytes = payload(256);
  store.save(SweepStage::kOrdering, 42, bytes.data(), bytes.size());
  EXPECT_TRUE(store.contains(SweepStage::kOrdering, 42));

  const auto mapping = store.load(SweepStage::kOrdering, 42);
  ASSERT_TRUE(mapping.has_value());
  ASSERT_EQ(mapping->size(), bytes.size());
  EXPECT_EQ(std::memcmp(mapping->data(), bytes.data(), bytes.size()), 0);

  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(s.spills, 1u);
  EXPECT_EQ(s.resident_files, 1u);
  EXPECT_EQ(s.read_bytes, bytes.size());
}

TEST_F(ArtifactStoreTest, AbsentKeyIsAMiss) {
  ArtifactStore store(options());
  EXPECT_FALSE(store.contains(SweepStage::kInstance, 7));
  EXPECT_FALSE(store.load(SweepStage::kInstance, 7).has_value());
  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt, 0u);
}

TEST_F(ArtifactStoreTest, SameKeyDifferentStageAreDistinctArtifacts) {
  ArtifactStore store(options());
  const auto a = payload(32, 1);
  const auto b = payload(64, 9);
  store.save(SweepStage::kOrdering, 42, a.data(), a.size());
  store.save(SweepStage::kInstance, 42, b.data(), b.size());
  const auto la = store.load(SweepStage::kOrdering, 42);
  const auto lb = store.load(SweepStage::kInstance, 42);
  ASSERT_TRUE(la.has_value());
  ASSERT_TRUE(lb.has_value());
  EXPECT_EQ(la->size(), a.size());
  EXPECT_EQ(lb->size(), b.size());
}

TEST_F(ArtifactStoreTest, SecondSaveOfAKeyIsIgnored) {
  ArtifactStore store(options());
  const auto first = payload(64, 1);
  const auto second = payload(64, 200);
  store.save(SweepStage::kNfiHistogram, 5, first.data(), first.size());
  store.save(SweepStage::kNfiHistogram, 5, second.data(), second.size());
  const auto mapping = store.load(SweepStage::kNfiHistogram, 5);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(std::memcmp(mapping->data(), first.data(), first.size()), 0);
  EXPECT_EQ(store.stats().spills, 1u);
}

TEST_F(ArtifactStoreTest, ReopenIndexesExistingArtifacts) {
  const auto bytes = payload(128);
  {
    ArtifactStore store(options());
    store.save(SweepStage::kCanonical, 9, bytes.data(), bytes.size());
  }
  ArtifactStore reopened(options());
  EXPECT_TRUE(reopened.contains(SweepStage::kCanonical, 9));
  const auto mapping = reopened.load(SweepStage::kCanonical, 9);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->size(), bytes.size());
  EXPECT_EQ(reopened.stats().resident_files, 1u);
}

TEST_F(ArtifactStoreTest, MappingOutlivesEviction) {
  // POSIX unlink leaves established mappings intact: a payload handed
  // out stays readable even after the budget deletes its file.
  ArtifactStore store(options());
  const auto bytes = payload(512);
  store.save(SweepStage::kOrdering, 1, bytes.data(), bytes.size());
  const auto mapping = store.load(SweepStage::kOrdering, 1);
  ASSERT_TRUE(mapping.has_value());
  fs::remove(only_artifact_file());
  EXPECT_EQ(std::memcmp(mapping->data(), bytes.data(), bytes.size()), 0);
}

TEST_F(ArtifactStoreTest, TruncatedFileIsACountedMissAndIsDeleted) {
  ArtifactStore store(options());
  const auto bytes = payload(256);
  store.save(SweepStage::kFfiHistogram, 3, bytes.data(), bytes.size());
  const fs::path file = only_artifact_file();
  fs::resize_file(file, fs::file_size(file) - 17);

  EXPECT_FALSE(store.load(SweepStage::kFfiHistogram, 3).has_value());
  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt, 1u);
  EXPECT_FALSE(fs::exists(file));
  EXPECT_FALSE(store.contains(SweepStage::kFfiHistogram, 3));
  // The second probe is a plain miss: the invalid file is gone.
  EXPECT_FALSE(store.load(SweepStage::kFfiHistogram, 3).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(ArtifactStoreTest, TruncationBelowHeaderIsACountedMiss) {
  ArtifactStore store(options());
  const auto bytes = payload(64);
  store.save(SweepStage::kOrdering, 11, bytes.data(), bytes.size());
  fs::resize_file(only_artifact_file(), 10);
  EXPECT_FALSE(store.load(SweepStage::kOrdering, 11).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(ArtifactStoreTest, BitFlippedPayloadFailsTheChecksum) {
  ArtifactStore store(options());
  const auto bytes = payload(256);
  store.save(SweepStage::kInstance, 4, bytes.data(), bytes.size());
  const fs::path file = only_artifact_file();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(48 + 100);  // one payload byte, past the 48-byte header
    char flipped = static_cast<char>(bytes[100] ^ 0x80);
    f.write(&flipped, 1);
  }
  EXPECT_FALSE(store.load(SweepStage::kInstance, 4).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(file));
}

TEST_F(ArtifactStoreTest, WrongFormatVersionIsACountedMiss) {
  ArtifactStore store(options());
  const auto bytes = payload(64);
  store.save(SweepStage::kCanonical, 8, bytes.data(), bytes.size());
  const fs::path file = only_artifact_file();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // format_version field, just past the magic
    const std::uint32_t bad = kArtifactStoreFormatVersion + 1;
    f.write(reinterpret_cast<const char*>(&bad), sizeof bad);
  }
  EXPECT_FALSE(store.load(SweepStage::kCanonical, 8).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(ArtifactStoreTest, ForeignProvenanceNeverAnswersProbes) {
  const auto bytes = payload(64);
  {
    ArtifactStore store(options("build-a"));
    store.save(SweepStage::kOrdering, 6, bytes.data(), bytes.size());
  }
  // A different build shares the directory: the foreign artifact is
  // simply invisible (filename keys differ), not corrupt, not deleted.
  ArtifactStore other(options("build-b"));
  EXPECT_FALSE(other.contains(SweepStage::kOrdering, 6));
  EXPECT_FALSE(other.load(SweepStage::kOrdering, 6).has_value());
  EXPECT_EQ(other.stats().corrupt, 0u);
  EXPECT_EQ(other.stats().misses, 1u);
  EXPECT_FALSE(only_artifact_file().empty());

  ArtifactStore original(options("build-a"));
  EXPECT_TRUE(original.load(SweepStage::kOrdering, 6).has_value());
}

TEST_F(ArtifactStoreTest, BudgetEvictsOldestFirst) {
  ArtifactStoreOptions o = options();
  // Three ~1 KiB artifacts against a 2.5 KiB budget: the first save
  // must be evicted, the last two survive.
  o.byte_budget = 2560;
  ArtifactStore store(o);
  const auto bytes = payload(1024 - 48);
  store.save(SweepStage::kOrdering, 1, bytes.data(), bytes.size());
  store.save(SweepStage::kOrdering, 2, bytes.data(), bytes.size());
  store.save(SweepStage::kOrdering, 3, bytes.data(), bytes.size());

  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.evicted_files, 1u);
  EXPECT_EQ(s.resident_files, 2u);
  EXPECT_LE(s.resident_bytes, o.byte_budget);
  EXPECT_FALSE(store.contains(SweepStage::kOrdering, 1));
  EXPECT_TRUE(store.contains(SweepStage::kOrdering, 2));
  EXPECT_TRUE(store.contains(SweepStage::kOrdering, 3));
}

TEST_F(ArtifactStoreTest, OverBudgetStoreStillKeepsTheNewestArtifact) {
  ArtifactStoreOptions o = options();
  o.byte_budget = 1;  // nothing fits, but the newest file is never culled
  ArtifactStore store(o);
  const auto bytes = payload(512);
  store.save(SweepStage::kInstance, 1, bytes.data(), bytes.size());
  EXPECT_TRUE(store.contains(SweepStage::kInstance, 1));
  store.save(SweepStage::kInstance, 2, bytes.data(), bytes.size());
  EXPECT_FALSE(store.contains(SweepStage::kInstance, 1));
  EXPECT_TRUE(store.contains(SweepStage::kInstance, 2));
}

TEST_F(ArtifactStoreTest, ClearRemovesEveryArtifactAtOpen) {
  const auto bytes = payload(64);
  {
    ArtifactStore store(options());
    store.save(SweepStage::kOrdering, 1, bytes.data(), bytes.size());
    store.save(SweepStage::kInstance, 2, bytes.data(), bytes.size());
  }
  ArtifactStoreOptions o = options();
  o.clear = true;
  ArtifactStore cleared(o);
  EXPECT_EQ(cleared.stats().resident_files, 0u);
  EXPECT_FALSE(cleared.contains(SweepStage::kOrdering, 1));
  EXPECT_FALSE(cleared.contains(SweepStage::kInstance, 2));
  std::size_t artifact_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".sfcart") ++artifact_files;
  }
  EXPECT_EQ(artifact_files, 0u);
}

TEST_F(ArtifactStoreTest, EmptyPayloadRoundTrips) {
  ArtifactStore store(options());
  store.save(SweepStage::kOrdering, 77, nullptr, 0);
  const auto mapping = store.load(SweepStage::kOrdering, 77);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->size(), 0u);
}

TEST_F(ArtifactStoreTest, JsonSnapshotCarriesTheCounters) {
  ArtifactStore store(options());
  const auto bytes = payload(64);
  store.save(SweepStage::kOrdering, 1, bytes.data(), bytes.size());
  (void)store.load(SweepStage::kOrdering, 1);
  const std::string json = store.json();
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"spills\":1"), std::string::npos);
  EXPECT_NE(json.find("\"resident_files\":1"), std::string::npos);
}

}  // namespace
}  // namespace sfc::core
