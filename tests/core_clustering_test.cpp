// Clustering-metric tests: hand-computable cases per curve, structural
// invariants, and the literature's Hilbert-wins ordering — the counterpoint
// to the paper's ANNS result.
#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace sfc::core {
namespace {

std::uint64_t clusters(CurveKind kind, unsigned level, QueryRect q) {
  const auto curve = make_curve<2>(kind);
  return cluster_count(*curve, level, q);
}

TEST(ClusterCount, SingleCellIsOneCluster) {
  for (const CurveKind kind : kAllCurves) {
    EXPECT_EQ(clusters(kind, 4, {7, 3, 1, 1}), 1u) << curve_name(kind);
  }
}

TEST(ClusterCount, FullGridIsOneCluster) {
  // Any bijection onto [0, n) covers the whole grid contiguously.
  for (const CurveKind kind : kAllCurves) {
    EXPECT_EQ(clusters(kind, 3, {0, 0, 8, 8}), 1u) << curve_name(kind);
  }
}

TEST(ClusterCount, RowMajorFullWidthRowsAreOneCluster) {
  // Full-width bands are contiguous in row-major order.
  EXPECT_EQ(clusters(CurveKind::kRowMajor, 4, {0, 5, 16, 3}), 1u);
}

TEST(ClusterCount, RowMajorInteriorWindowIsOneRunPerRow) {
  EXPECT_EQ(clusters(CurveKind::kRowMajor, 4, {3, 2, 5, 4}), 4u);
  EXPECT_EQ(clusters(CurveKind::kRowMajor, 4, {3, 2, 5, 1}), 1u);
}

TEST(ClusterCount, HilbertAlignedQuadrantIsOneCluster) {
  // Aligned power-of-two blocks are contiguous index ranges on Hilbert.
  EXPECT_EQ(clusters(CurveKind::kHilbert, 4, {0, 0, 8, 8}), 1u);
  EXPECT_EQ(clusters(CurveKind::kHilbert, 4, {8, 8, 8, 8}), 1u);
  EXPECT_EQ(clusters(CurveKind::kHilbert, 4, {4, 8, 4, 4}), 1u);
}

TEST(ClusterCount, MortonAlignedQuadrantIsOneCluster) {
  EXPECT_EQ(clusters(CurveKind::kMorton, 4, {8, 0, 8, 8}), 1u);
  EXPECT_EQ(clusters(CurveKind::kMorton, 4, {12, 4, 4, 4}), 1u);
}

TEST(ClusterCount, MortonMisalignedWindowFragments) {
  // A window straddling the central cross of the Z-curve fragments badly.
  const auto misaligned = clusters(CurveKind::kMorton, 4, {7, 7, 2, 2});
  EXPECT_GE(misaligned, 3u);
}

TEST(ClusterCount, InvalidQueriesThrow) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  EXPECT_THROW(cluster_count(*curve, 3, {0, 0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(cluster_count(*curve, 3, {7, 0, 2, 1}), std::invalid_argument);
  EXPECT_THROW(cluster_count(*curve, 3, {0, 6, 1, 3}), std::invalid_argument);
}

TEST(AverageClusters, BoundsAndSanity) {
  // 1 <= clusters <= w*h for every curve and window.
  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const auto stats = average_clusters(*curve, 5, 4, 4);
    EXPECT_GE(stats.average, 1.0) << curve_name(kind);
    EXPECT_LE(stats.average, 16.0) << curve_name(kind);
    EXPECT_LE(stats.maximum, 16u) << curve_name(kind);
    EXPECT_EQ(stats.queries, 29u * 29u) << curve_name(kind);
  }
}

TEST(AverageClusters, HilbertIsBestUnderClustering) {
  // The classical result (Jagadish '90, Moon et al. '01): under the
  // clustering metric Hilbert beats both Z and the scan orders — the
  // REVERSE of the paper's ANNS finding, which is exactly the tension the
  // paper's Section V highlights. (Z and row-major swap places here:
  // row-major's h-runs-per-window is strong on square windows while the
  // Z-curve fragments across its central cross.)
  for (const std::uint32_t w : {2u, 4u, 8u}) {
    const double h =
        average_clusters(*make_curve<2>(CurveKind::kHilbert), 6, w, w)
            .average;
    const double z =
        average_clusters(*make_curve<2>(CurveKind::kMorton), 6, w, w).average;
    const double g =
        average_clusters(*make_curve<2>(CurveKind::kGray), 6, w, w).average;
    const double r =
        average_clusters(*make_curve<2>(CurveKind::kRowMajor), 6, w, w)
            .average;
    EXPECT_LT(h, z) << "window " << w;
    EXPECT_LT(h, g) << "window " << w;
    EXPECT_LT(h, r) << "window " << w;
  }
}

TEST(AverageClusters, HilbertApproachesQuarterPerimeter) {
  // Moon et al.: E[clusters] -> perimeter / 4 for the 2-D Hilbert curve as
  // the grid grows; for an 8 x 8 window that is 8. Allow a modest band
  // (finite-grid boundary effects pull the average slightly down).
  const double avg =
      average_clusters(*make_curve<2>(CurveKind::kHilbert), 7, 8, 8).average;
  EXPECT_GT(avg, 0.85 * 8.0);
  EXPECT_LT(avg, 1.15 * 8.0);
}

TEST(AverageClusters, RowMajorClosedForm) {
  // Interior w x h windows are h runs; windows touching the full width
  // collapse — with w < side every placement is h runs except none exist
  // that span the width, so the average is exactly h... unless w == side.
  const double avg =
      average_clusters(*make_curve<2>(CurveKind::kRowMajor), 5, 3, 4).average;
  EXPECT_DOUBLE_EQ(avg, 4.0);
  const double full =
      average_clusters(*make_curve<2>(CurveKind::kRowMajor), 5, 32, 4)
          .average;
  EXPECT_DOUBLE_EQ(full, 1.0);
}

TEST(AverageClusters, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  const auto curve = make_curve<2>(CurveKind::kGray);
  const auto serial = average_clusters(*curve, 6, 5, 3, nullptr);
  const auto parallel = average_clusters(*curve, 6, 5, 3, &pool);
  EXPECT_DOUBLE_EQ(serial.average, parallel.average);
  EXPECT_EQ(serial.maximum, parallel.maximum);
  EXPECT_EQ(serial.queries, parallel.queries);
}

TEST(AverageClusters, SnakeMergesAtTurns) {
  // The snake scan merges runs where the window touches a turn column, so
  // its average is at most row-major's.
  const double snake =
      average_clusters(*make_curve<2>(CurveKind::kSnake), 5, 4, 4).average;
  const double row =
      average_clusters(*make_curve<2>(CurveKind::kRowMajor), 5, 4, 4).average;
  EXPECT_LE(snake, row);
}

}  // namespace
}  // namespace sfc::core
