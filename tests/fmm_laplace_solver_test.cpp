// Laplace FMM solver tests: correctness against direct summation,
// convergence in the expansion order, and the structural guarantees that
// tie the solver to the communication model.
#include "fmm/laplace_fmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sfc::fmm {
namespace {

std::vector<Charge> random_charges(std::size_t n, std::uint64_t seed,
                                   bool neutral = false) {
  util::Xoshiro256pp rng(seed);
  std::vector<Charge> charges;
  charges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Charge c;
    c.x = util::uniform01(rng);
    c.y = util::uniform01(rng);
    c.q = util::uniform01(rng) * 2.0 - 1.0;
    if (neutral && (i & 1)) c.q = -charges[i - 1].q;
    charges.push_back(c);
  }
  return charges;
}

double max_rel_error(const std::vector<double>& got,
                     const std::vector<double>& want) {
  double scale = 0.0;
  for (const double w : want) scale = std::max(scale, std::abs(w));
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got[i] - want[i]) / scale);
  }
  return err;
}

TEST(LaplaceFmm, MatchesDirectSummation) {
  const auto charges = random_charges(600, 31);
  FmmSolverConfig cfg;
  cfg.tree_level = 3;
  cfg.terms = 16;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto direct = direct_potentials(charges);
  EXPECT_LT(max_rel_error(fmm.potentials(), direct), 1e-8);
}

TEST(LaplaceFmm, MatchesDirectOnDeeperTree) {
  const auto charges = random_charges(1500, 32);
  FmmSolverConfig cfg;
  cfg.tree_level = 4;
  cfg.terms = 16;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto direct = direct_potentials(charges);
  EXPECT_LT(max_rel_error(fmm.potentials(), direct), 1e-8);
}

TEST(LaplaceFmm, ErrorDecreasesWithExpansionOrder) {
  const auto charges = random_charges(400, 33);
  const auto direct = direct_potentials(charges);
  double prev = 1.0;
  for (const unsigned p : {2u, 6u, 10u, 14u}) {
    FmmSolverConfig cfg;
    cfg.tree_level = 3;
    cfg.terms = p;
    const LaplaceFmm2D fmm(charges, cfg);
    const double err = max_rel_error(fmm.potentials(), direct);
    EXPECT_LT(err, prev) << "p=" << p;
    prev = err;
  }
  EXPECT_LT(prev, 1e-6);
}

TEST(LaplaceFmm, NeutralSystemsConvergeToo) {
  const auto charges = random_charges(500, 34, /*neutral=*/true);
  FmmSolverConfig cfg;
  cfg.tree_level = 3;
  cfg.terms = 14;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto direct = direct_potentials(charges);
  double abs_err = 0.0;
  for (std::size_t i = 0; i < charges.size(); ++i) {
    abs_err = std::max(abs_err,
                       std::abs(fmm.potentials()[i] - direct[i]));
  }
  // Truncation at p=14 with the worst-case interaction-list separation
  // gives ~ 0.5^14 per unit charge; stay an order of magnitude above it.
  EXPECT_LT(abs_err, 5e-6);
}

TEST(LaplaceFmm, ClusteredChargesStayAccurate) {
  // All charges in one corner cell exercise the empty-cell skips.
  util::Xoshiro256pp rng(35);
  std::vector<Charge> charges;
  for (int i = 0; i < 200; ++i) {
    charges.push_back(
        {0.05 * util::uniform01(rng), 0.05 * util::uniform01(rng),
         util::uniform01(rng) - 0.5});
  }
  FmmSolverConfig cfg;
  cfg.tree_level = 4;
  cfg.terms = 14;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto direct = direct_potentials(charges);
  EXPECT_LT(max_rel_error(fmm.potentials(), direct), 1e-8);
}

TEST(LaplaceFmm, TwoChargeSanity) {
  // phi at each of two charges is the other's contribution exactly.
  std::vector<Charge> charges = {{0.1, 0.1, 2.0}, {0.9, 0.8, -1.0}};
  FmmSolverConfig cfg;
  cfg.tree_level = 2;
  cfg.terms = 10;
  const LaplaceFmm2D fmm(charges, cfg);
  const double r = std::hypot(0.8, 0.7);
  EXPECT_NEAR(fmm.potentials()[0], -1.0 * std::log(r), 1e-9);
  EXPECT_NEAR(fmm.potentials()[1], 2.0 * std::log(r), 1e-9);
}

TEST(LaplaceFmm, FieldsMatchDirectSummation) {
  const auto charges = random_charges(700, 38);
  FmmSolverConfig cfg;
  cfg.tree_level = 3;
  cfg.terms = 16;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto direct = direct_fields(charges);
  double scale = 0.0;
  for (const auto& f : direct) {
    scale = std::max(scale, std::hypot(f.x, f.y));
  }
  double err = 0.0;
  for (std::size_t i = 0; i < charges.size(); ++i) {
    err = std::max(err, std::hypot(fmm.fields()[i].x - direct[i].x,
                                   fmm.fields()[i].y - direct[i].y));
  }
  EXPECT_LT(err / scale, 1e-7);
}

TEST(LaplaceFmm, TwoChargeFieldSanity) {
  // E at charge 0 from charge 1: q1 * (z0 - z1) / |z0 - z1|^2.
  // The pair interacts through the far-field expansions (their cells are
  // in each other's interaction lists), so accuracy is truncation-bound:
  // use a high order and a matching tolerance.
  std::vector<Charge> charges = {{0.25, 0.25, 1.0}, {0.75, 0.5, -2.0}};
  FmmSolverConfig cfg;
  cfg.tree_level = 2;
  cfg.terms = 28;
  const LaplaceFmm2D fmm(charges, cfg);
  const double dx = 0.25 - 0.75, dy = 0.25 - 0.5;
  const double inv_r2 = 1.0 / (dx * dx + dy * dy);
  EXPECT_NEAR(fmm.fields()[0].x, -2.0 * dx * inv_r2, 1e-6);
  EXPECT_NEAR(fmm.fields()[0].y, -2.0 * dy * inv_r2, 1e-6);
  EXPECT_NEAR(fmm.fields()[1].x, 1.0 * -dx * inv_r2, 1e-6);
  EXPECT_NEAR(fmm.fields()[1].y, 1.0 * -dy * inv_r2, 1e-6);
}

TEST(LaplaceFmm, NewtonThirdLawOnDirectFields) {
  // Momentum conservation: sum of q_i * E_i vanishes for direct fields
  // (pairwise forces cancel).
  const auto charges = random_charges(200, 39);
  const auto fields = direct_fields(charges);
  double fx = 0.0, fy = 0.0;
  for (std::size_t i = 0; i < charges.size(); ++i) {
    fx += charges[i].q * fields[i].x;
    fy += charges[i].q * fields[i].y;
  }
  EXPECT_NEAR(fx, 0.0, 1e-9);
  EXPECT_NEAR(fy, 0.0, 1e-9);
}

TEST(LaplaceFmm, PassCountsAreConsistent) {
  const auto charges = random_charges(800, 36);
  FmmSolverConfig cfg;
  cfg.tree_level = 4;
  cfg.terms = 8;
  const LaplaceFmm2D fmm(charges, cfg);
  const auto& counts = fmm.pass_counts();
  // One L2P per charge; at least one P2M per occupied leaf; M2L bounded by
  // 27 per cell over all levels.
  EXPECT_EQ(counts.l2p, charges.size());
  EXPECT_GT(counts.p2m, 0u);
  EXPECT_GT(counts.m2l, 0u);
  EXPECT_GT(counts.m2m, 0u);
  const std::uint64_t cells_bound = (256 + 64 + 16) * 27;
  EXPECT_LE(counts.m2l, cells_bound);
  // Every unordered near pair once: far fewer than n^2/2.
  EXPECT_LT(counts.p2p_pairs, charges.size() * charges.size() / 2);
}

TEST(LaplaceFmm, InvalidConfigThrows) {
  const auto charges = random_charges(10, 37);
  FmmSolverConfig cfg;
  cfg.tree_level = 1;
  EXPECT_THROW(LaplaceFmm2D(charges, cfg), std::invalid_argument);
  cfg.tree_level = 3;
  cfg.terms = 0;
  EXPECT_THROW(LaplaceFmm2D(charges, cfg), std::invalid_argument);
}

TEST(LaplaceFmm, OutOfDomainChargeThrows) {
  std::vector<Charge> charges = {{1.5, 0.5, 1.0}};
  FmmSolverConfig cfg;
  EXPECT_THROW(LaplaceFmm2D(charges, cfg), std::invalid_argument);
}

TEST(LaplaceFmm, EmptyInputIsFine) {
  const LaplaceFmm2D fmm({}, FmmSolverConfig{});
  EXPECT_TRUE(fmm.potentials().empty());
}

}  // namespace
}  // namespace sfc::fmm
