// pbt_fold_diff_test.cpp — differential suite for the Topology::fold
// contract (the DistanceFold API).
//
// Every topology advertises a fold strategy (factorized closed form,
// dense hop table, streamed BFS) and all of them must produce the exact
// same uint64 totals: integer addition commutes and multiplication
// distributes, so any kernel is a reordering of the same per-event sum.
// These properties pin
//   * factorized fold == dense DistanceTable fold, bit-identical, for
//     every paper topology at table-sized p;
//   * fold totals == the BFS oracle graph's fold at small p;
//   * the streamed graph path == the closed form beyond the table budget;
//   * metamorphic invariance of torus folds under per-axis rotation
//     (exercising the relabel remap delegation); and
//   * relabeled folds == folding an explicitly permuted histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rank_pair.hpp"
#include "obs/metrics.hpp"
#include "sfc/curve.hpp"
#include "testing/domain.hpp"
#include "testing/gtest.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear.hpp"
#include "topology/relabel.hpp"
#include "oracles/oracles.hpp"

namespace sfc {
namespace {

using pbt::TopoCase;
using pbt::topology_case;
using pbt::unsigned_in;

using TopoSeed = std::pair<TopoCase, unsigned>;
using UnsignedPair = std::pair<unsigned, unsigned>;

std::string show(const core::CommTotals& t) {
  return "{hops=" + std::to_string(t.hops) +
         ", count=" + std::to_string(t.count) + "}";
}

/// Deterministic (src, dst, count) stream from a SplitMix64-style walk.
core::RankPairAccumulator histogram_of(topo::Rank p, std::size_t n,
                                       std::uint64_t seed,
                                       std::size_t budget =
                                           core::RankPairAccumulator::
                                               kDenseEntryBudget) {
  core::RankPairAccumulator acc(p, budget);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    acc.add(static_cast<topo::Rank>((state >> 33) % p),
            static_cast<topo::Rank>((state >> 13) % p), 1 + (state & 3));
  }
  return acc;
}

std::vector<topo::Rank> random_perm(topo::Rank p, std::uint64_t seed) {
  std::vector<topo::Rank> perm(p);
  std::iota(perm.begin(), perm.end(), topo::Rank{0});
  std::uint64_t state = seed ^ 0xd1b54a32d192ed03ull;
  for (topo::Rank i = p; i > 1; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(perm[i - 1], perm[(state >> 29) % i]);
  }
  return perm;
}

// --------------------------------- factorized vs dense-table fold

TEST(FoldDiff, FactorizedMatchesDenseTableFold) {
  const auto gen = pbt::pair_of(topology_case(256), unsigned_in(0, 1u << 30));
  SFCACD_PBT_CHECK(
      gen,
      [](const TopoSeed& v)
          -> std::optional<std::string> {
        const TopoCase& c = v.first;
        const unsigned seed = v.second;
        const auto net = c.make();
        if (net->fold_strategy() != topo::FoldStrategy::kFactorized) {
          return "paper topology did not report a factorized strategy";
        }
        const topo::Rank p = net->size();
        const core::RankPairAccumulator dense = histogram_of(p, 1500, seed);
        const core::CommTotals fold = net->fold(dense.view());
        const core::CommTotals want = dense.fold(net->dense_table());
        if (!(fold == want)) {
          return "factorized fold " + show(fold) +
                 " != dense-table fold " + show(want);
        }
        // Same totals through a sparse-mode view of the same multiset.
        const core::RankPairAccumulator sparse =
            histogram_of(p, 1500, seed, /*budget=*/0);
        if (sparse.dense()) return "budget 0 did not force sparse mode";
        const core::CommTotals sfold = net->fold(sparse.view());
        if (!(sfold == want)) {
          return "sparse-view fold " + show(sfold) + " != " + show(want);
        }
        return std::nullopt;
      });
}

TEST(FoldDiff, FoldMatchesBfsOracleGraphFold) {
  const auto gen = pbt::pair_of(topology_case(64), unsigned_in(0, 1u << 30));
  SFCACD_PBT_CHECK(
      gen,
      [](const TopoSeed& v)
          -> std::optional<std::string> {
        const TopoCase& c = v.first;
        const unsigned seed = v.second;
        const auto net = c.make();
        const topo::GraphTopology g = oracle::oracle_graph(c);
        if (net->size() != g.size()) return "size mismatch vs oracle graph";
        const core::RankPairAccumulator acc =
            histogram_of(net->size(), 800, seed);
        const core::CommTotals fold = net->fold(acc.view());
        const core::CommTotals want = g.fold(acc.view());
        if (!(fold == want)) {
          return "closed-form fold " + show(fold) +
                 " != BFS oracle fold " + show(want);
        }
        return std::nullopt;
      });
}

// --------------------------------- streamed path beyond the budget

TEST(FoldDiff, GraphStreamedMatchesFactorizedBeyondTableBudget) {
  // Smallest ring whose p² exceeds the table entry budget: the graph
  // must stream one BFS row per distinct source instead of building the
  // dense table, and still match the closed-form ring kernel exactly.
  const topo::Rank p = 4100;
  ASSERT_FALSE(topo::distance_table_fits(p));
  const topo::GraphTopology g = topo::build_ring_graph(p);
  EXPECT_EQ(g.fold_strategy(), topo::FoldStrategy::kStreamed);
  const topo::RingTopology ring(p);
  EXPECT_EQ(ring.fold_strategy(), topo::FoldStrategy::kFactorized);

  const core::RankPairAccumulator acc = histogram_of(p, 20000, 7);
  ASSERT_FALSE(acc.dense());  // p² > the dense accumulator budget too
  const core::CommTotals streamed = g.fold(acc.view());
  const core::CommTotals factorized = ring.fold(acc.view());
  EXPECT_EQ(streamed.hops, factorized.hops);
  EXPECT_EQ(streamed.count, factorized.count);
}

// --------------------------------- metamorphic: torus axis rotation

TEST(FoldDiff, TorusFoldInvariantUnderPerAxisRotation) {
  const auto gen = pbt::pair_of(unsigned_in(1, 4), unsigned_in(0, 1u << 30));
  SFCACD_PBT_CHECK(
      gen,
      [](const UnsignedPair& v)
          -> std::optional<std::string> {
        const unsigned level = v.first;
        const unsigned seed = v.second;
        const auto curve = make_curve<2>(CurveKind::kHilbert);
        const topo::TorusTopology<2> torus(level, *curve);
        const topo::Rank p = torus.size();
        const std::uint32_t s = torus.side();
        // Wrapped distances depend only on coordinate differences mod s,
        // so translating every rank by (dx, dy) is an automorphism: the
        // relabeled fold must be bit-identical.
        std::vector<topo::Rank> rank_at(p);
        for (topo::Rank r = 0; r < p; ++r) {
          const Point<2>& q = torus.coordinate(r);
          rank_at[q[1] * s + q[0]] = r;
        }
        const std::uint32_t dx = seed % s;
        const std::uint32_t dy = (seed / 7) % s;
        std::vector<topo::Rank> perm(p);
        for (topo::Rank r = 0; r < p; ++r) {
          const Point<2>& q = torus.coordinate(r);
          perm[r] = rank_at[((q[1] + dy) % s) * s + ((q[0] + dx) % s)];
        }
        const topo::RelabeledTopology view(torus, perm);
        const core::RankPairAccumulator acc = histogram_of(p, 1500, seed);
        const core::CommTotals base = torus.fold(acc.view());
        const core::CommTotals rotated = view.fold(acc.view());
        if (!(base == rotated)) {
          return "torus fold changed under rotation by (" +
                 std::to_string(dx) + "," + std::to_string(dy) +
                 "): " + show(rotated) + " != " + show(base);
        }
        return std::nullopt;
      });
}

// --------------------------------- relabel remap delegation

TEST(FoldDiff, RelabeledFoldMatchesExplicitlyPermutedHistogram) {
  const auto gen = pbt::pair_of(topology_case(128), unsigned_in(0, 1u << 30));
  SFCACD_PBT_CHECK(
      gen,
      [](const TopoSeed& v)
          -> std::optional<std::string> {
        const TopoCase& c = v.first;
        const unsigned seed = v.second;
        const auto net = c.make();
        const topo::Rank p = net->size();
        const std::vector<topo::Rank> perm = random_perm(p, seed);
        const topo::RelabeledTopology view(*net, perm);
        if (view.fold_strategy() != net->fold_strategy()) {
          return "relabel changed the advertised fold strategy";
        }

        const core::RankPairAccumulator acc = histogram_of(p, 1000, seed);
        core::RankPairAccumulator mapped(p);
        acc.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t k) {
          mapped.add(perm[a], perm[b], k);
        });
        const core::CommTotals via_view = view.fold(acc.view());
        const core::CommTotals via_map = net->fold(mapped.view());
        if (!(via_view == via_map)) {
          return "relabeled fold " + show(via_view) +
                 " != explicitly permuted fold " + show(via_map);
        }

        // Nested relabels compose the remap tables inside fold_pairs.
        const std::vector<topo::Rank> perm2 = random_perm(p, seed ^ 0xabcd);
        const topo::RelabeledTopology nested(view, perm2);
        core::RankPairAccumulator mapped2(p);
        acc.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t k) {
          mapped2.add(perm[perm2[a]], perm[perm2[b]], k);
        });
        const core::CommTotals via_nested = nested.fold(acc.view());
        const core::CommTotals via_map2 = net->fold(mapped2.view());
        if (!(via_nested == via_map2)) {
          return "nested relabel fold " + show(via_nested) +
                 " != composed permutation fold " + show(via_map2);
        }
        return std::nullopt;
      });
}

// --------------------------------- the table-budget boundary, pinned

TEST(FoldDiff, BitIdenticalAtTableBudgetBoundary) {
  ASSERT_TRUE(topo::distance_table_fits(4096));
  ASSERT_FALSE(topo::distance_table_fits(4097));

  const topo::HypercubeTopology cube(4096);
  const core::RankPairAccumulator hc = histogram_of(4096, 50000, 11);
  const core::CommTotals cube_fold = cube.fold(hc.view());
  const core::CommTotals cube_want = hc.fold(cube.dense_table());
  EXPECT_EQ(cube_fold.hops, cube_want.hops);
  EXPECT_EQ(cube_fold.count, cube_want.count);

  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const topo::TorusTopology<2> torus(6, *curve);  // 64×64 = 4096 ranks
  const core::CommTotals torus_fold = torus.fold(hc.view());
  const core::CommTotals torus_want = hc.fold(torus.dense_table());
  EXPECT_EQ(torus_fold.hops, torus_want.hops);
  EXPECT_EQ(torus_fold.count, torus_want.count);
}

// --------------------------------- strategy observability

TEST(FoldDiff, FoldStrategyCountersTrackDispatch) {
  obs::Registry& reg = obs::Registry::instance();
  const std::uint64_t factorized0 =
      reg.counter("topo.fold.factorized").value();
  const std::uint64_t dense0 = reg.counter("topo.fold.dense").value();

  const topo::RingTopology ring(32);
  const core::RankPairAccumulator acc = histogram_of(32, 100, 3);
  (void)ring.fold(acc.view());
  EXPECT_EQ(reg.counter("topo.fold.factorized").value(), factorized0 + 1);

  const topo::GraphTopology g = topo::build_ring_graph(32);
  (void)g.fold(acc.view());
  EXPECT_EQ(reg.counter("topo.fold.dense").value(), dense0 + 1);
}

}  // namespace
}  // namespace sfc
