// Compressed-quadtree tests: structure invariants, the classical 2n-1
// node bound, and the hop-preservation equivalence with the uncompressed
// interpolation model.
#include "fmm/compressed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "distribution/distribution.hpp"
#include "fmm/cells.hpp"
#include "topology/linear.hpp"

namespace sfc::fmm {
namespace {

std::vector<Point2> sorted_particles(std::vector<Point2> pts,
                                     unsigned level) {
  std::sort(pts.begin(), pts.end(), [level](const Point2& a, const Point2& b) {
    return pack(a, level) < pack(b, level);
  });
  return pts;
}

TEST(CompressedTree, SingleParticleCollapsesToRootPlusLeaf) {
  const std::vector<Point2> particles = {make_point(5, 2)};
  const CellTree<2> tree(particles, 6);
  const CompressedCellTree<2> compressed(tree);
  ASSERT_EQ(compressed.node_count(), 2u);
  EXPECT_EQ(compressed.nodes()[0].level, 0u);
  EXPECT_EQ(compressed.nodes()[0].parent, -1);
  EXPECT_EQ(compressed.nodes()[1].level, 6u);
  EXPECT_EQ(compressed.nodes()[1].parent, 0);
  // The uncompressed chain has 7 cells.
  EXPECT_EQ(tree.total_cells(), 7u);
  EXPECT_GT(compressed.compression(tree), 3.0);
}

TEST(CompressedTree, TwoCloseParticlesSplitAtTheirLca) {
  // Particles in adjacent finest cells sharing a level-5 parent: the split
  // happens at that parent, so nodes = root? No — the root has one
  // occupied child chain down to the LCA (which has 2 children), then two
  // leaves: {root, LCA, leaf, leaf} minus root-if-chain... representatives
  // are root, LCA, two leaves: 4 nodes.
  const std::vector<Point2> particles =
      sorted_particles({make_point(0, 0), make_point(1, 0)}, 6);
  const CellTree<2> tree(particles, 6);
  const CompressedCellTree<2> compressed(tree);
  EXPECT_EQ(compressed.node_count(), 4u);
}

TEST(CompressedTree, NodeBoundTwoNMinusOnePlusRoot) {
  // Internal representatives have >= 2 children, so there are at most n-1
  // of them; with n leaves and the root, node_count <= 2n.
  dist::SampleConfig cfg;
  cfg.count = 700;
  cfg.level = 9;
  cfg.seed = 51;
  for (const auto kind :
       {dist::DistKind::kUniform, dist::DistKind::kClusters}) {
    const auto particles =
        sorted_particles(dist::sample_particles<2>(kind, cfg), 9);
    const CellTree<2> tree(particles, 9);
    const CompressedCellTree<2> compressed(tree);
    EXPECT_LE(compressed.node_count(), 2 * particles.size());
    EXPECT_LT(compressed.node_count(), tree.total_cells());
  }
}

TEST(CompressedTree, ParentPointersAreProperAncestors) {
  dist::SampleConfig cfg;
  cfg.count = 400;
  cfg.level = 7;
  cfg.seed = 52;
  const auto particles = sorted_particles(
      dist::sample_particles<2>(dist::DistKind::kExponential, cfg), 7);
  const CellTree<2> tree(particles, 7);
  const CompressedCellTree<2> compressed(tree);
  for (const auto& node : compressed.nodes()) {
    if (node.parent < 0) {
      EXPECT_EQ(node.level, 0u);
      continue;
    }
    const auto& parent =
        compressed.nodes()[static_cast<std::size_t>(node.parent)];
    ASSERT_LT(parent.level, node.level);
    // The parent's key must be the node's ancestor key at that level.
    EXPECT_EQ(node.key >> (2 * (node.level - parent.level)), parent.key);
    // Ownership propagates: the parent owns a particle no later in the
    // order than the child's.
    EXPECT_LE(parent.min_particle, node.min_particle);
  }
}

TEST(CompressedTree, LeavesArePreserved) {
  dist::SampleConfig cfg;
  cfg.count = 300;
  cfg.level = 7;
  cfg.seed = 53;
  const auto particles = sorted_particles(
      dist::sample_particles<2>(dist::DistKind::kNormal, cfg), 7);
  const CellTree<2> tree(particles, 7);
  const CompressedCellTree<2> compressed(tree);
  std::set<std::uint64_t> leaf_keys;
  for (const auto& node : compressed.nodes()) {
    if (node.level == 7) leaf_keys.insert(node.key);
  }
  EXPECT_EQ(leaf_keys.size(), particles.size());
}

TEST(CompressedTree, AccumulationHopsMatchUncompressedInterpolation) {
  // The headline invariant: collapsing singleton chains removes only
  // zero-hop messages.
  dist::SampleConfig cfg;
  cfg.count = 1200;
  cfg.level = 8;
  cfg.seed = 54;
  for (const auto kind :
       {dist::DistKind::kUniform, dist::DistKind::kClusters,
        dist::DistKind::kPlummer}) {
    const auto particles =
        sorted_particles(dist::sample_particles<2>(kind, cfg), 8);
    const CellTree<2> tree(particles, 8);
    const CompressedCellTree<2> compressed(tree);
    const Partition part(particles.size(), 64);
    const topo::RingTopology ring(64);

    const auto uncompressed = ffi_totals<2>(tree, part, ring).interpolation;
    const auto collapsed =
        compressed_accumulation_totals<2>(compressed, part, ring);
    EXPECT_EQ(collapsed.hops, uncompressed.hops) << dist_name(kind);
    EXPECT_LT(collapsed.count, uncompressed.count) << dist_name(kind);
    EXPECT_GE(collapsed.acd(), uncompressed.acd()) << dist_name(kind);
  }
}

TEST(CompressedTree, ThreeDimensionalVariant) {
  const std::vector<Point3> particles = {make_point(0, 0, 0),
                                         make_point(7, 7, 7)};
  const CellTree<3> tree(particles, 3);
  const CompressedCellTree<3> compressed(tree);
  // Root (2 children at level 1) + 2 leaves... the split is at the root
  // itself, so: root, two leaf chains collapsed to the two leaves.
  EXPECT_EQ(compressed.node_count(), 3u);
}

}  // namespace
}  // namespace sfc::fmm
