// Golden regression tests: exact frozen values for deterministic
// configurations. These pin the end-to-end numeric behaviour of the
// pipeline — any refactor of the curves, samplers, models, or topologies
// that changes a number here changed observable behaviour and must be
// reviewed, not rubber-stamped.
//
// All values were produced by this library at the commit that froze them
// and are integers or exact rationals wherever possible.
#include <gtest/gtest.h>

#include <vector>

#include "core/acd.hpp"
#include "core/anns.hpp"
#include "core/clustering.hpp"
#include "core/sweep.hpp"

namespace sfc::core {
namespace {

Scenario2 golden_scenario() {
  Scenario2 s;
  s.particles = 5000;
  s.level = 8;
  s.procs = 1024;
  s.particle_curve = CurveKind::kHilbert;
  s.processor_curve = CurveKind::kHilbert;
  s.topology = topo::TopologyKind::kTorus;
  s.distribution = dist::DistKind::kUniform;
  s.radius = 1;
  s.seed = 777;
  return s;
}

TEST(Golden, HilbertHilbertTorusPipeline) {
  const auto r = compute_acd<2>(golden_scenario());
  EXPECT_EQ(r.nfi.hops, 2500u);
  EXPECT_EQ(r.nfi.count, 3046u);
  EXPECT_EQ(r.ffi.interpolation.hops, 4404u);
  EXPECT_EQ(r.ffi.interpolation.count, 13761u);
  EXPECT_EQ(r.ffi.anterpolation, r.ffi.interpolation);
  EXPECT_EQ(r.ffi.interaction.hops, 519186u);
  EXPECT_EQ(r.ffi.interaction.count, 128090u);
}

TEST(Golden, MortonGrayPairingSameInstance) {
  auto s = golden_scenario();
  s.particle_curve = CurveKind::kMorton;
  s.processor_curve = CurveKind::kGray;
  const auto r = compute_acd<2>(s);
  // Communication *counts* are placement-independent (same particles):
  EXPECT_EQ(r.nfi.count, 3046u);
  EXPECT_EQ(r.ffi.interaction.count, 128090u);
  // Hops are not:
  EXPECT_EQ(r.nfi.hops, 3224u);
  EXPECT_EQ(r.ffi.interaction.hops, 646090u);
}

TEST(Golden, AnnsLevel5ExactValues) {
  // 32x32 grid, radius 1. Z and row-major are exactly (N+1)/2 = 16.5;
  // Gray is exactly 24; Hilbert is exactly 19.625 (an exact multiple of
  // 1/2^k, so EXPECT_DOUBLE_EQ is safe).
  auto anns = [](CurveKind k) {
    return neighbor_stretch(*make_curve<2>(k), 5, 1);
  };
  EXPECT_DOUBLE_EQ(anns(CurveKind::kHilbert).average, 19.625);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kMorton).average, 16.5);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kGray).average, 24.0);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kRowMajor).average, 16.5);
  // Maximum stretches (MNNS): the Z-curve's worst pair jumps a third of
  // the grid; row-major's exactly one row.
  EXPECT_DOUBLE_EQ(anns(CurveKind::kHilbert).maximum, 853.0);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kMorton).maximum, 342.0);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kGray).maximum, 819.0);
  EXPECT_DOUBLE_EQ(anns(CurveKind::kRowMajor).maximum, 32.0);
}

TEST(Golden, ClusteringLevel5Window4) {
  auto clusters = [](CurveKind k) {
    return average_clusters(*make_curve<2>(k), 5, 4, 4);
  };
  EXPECT_NEAR(clusters(CurveKind::kHilbert).average, 3.8715814507, 1e-9);
  EXPECT_NEAR(clusters(CurveKind::kMorton).average, 6.1545778835, 1e-9);
  EXPECT_NEAR(clusters(CurveKind::kGray).average, 5.3448275862, 1e-9);
  EXPECT_DOUBLE_EQ(clusters(CurveKind::kRowMajor).average, 4.0);
  EXPECT_EQ(clusters(CurveKind::kHilbert).maximum, 6u);
  EXPECT_EQ(clusters(CurveKind::kMorton).maximum, 10u);
  EXPECT_EQ(clusters(CurveKind::kRowMajor).maximum, 4u);
}

TEST(Golden, DynamicsTrajectorySixteenSteps) {
  // A fixed 16-step drift trajectory through run_dynamics, pinning the
  // per-step NFI of all three reordering policies. This freezes the
  // whole dynamics stack at once: the drift RNG, the incremental
  // engine's retract/update/assert deltas (the frozen column is
  // maintained purely by DynamicAcd), the per-step re-sort baseline,
  // and the advisor's displaced-fraction trigger (threshold 0.02 fires
  // twice along this trajectory, so the lazy column re-anchors to the
  // re-sorted ordering mid-run).
  DynamicsStudy s;
  s.name = "golden_dynamics";
  s.particles = 1500;
  s.level = 7;  // 128 x 128
  s.procs = 64;
  s.steps = 16;
  s.seed = 777;
  s.move_fraction = 0.1;
  s.repartition_threshold = 0.02;
  const DynamicsResult r = run_dynamics(s, {});
  ASSERT_EQ(r.steps.size(), 16u);

  const std::vector<std::size_t> moves = {120, 111, 113, 121, 123, 114,
                                          122, 113, 120, 121, 128, 125,
                                          121, 121, 135, 130};
  // Event counts are placement-independent: identical for every policy.
  const std::vector<std::uint64_t> counts = {1068, 1066, 1062, 1032,
                                             1046, 1030, 1034, 1052,
                                             1048, 1046, 1022, 1036,
                                             1024, 1030, 1026, 1026};
  const std::vector<std::uint64_t> frozen_hops = {198, 200, 212, 208,
                                                  214, 218, 204, 224,
                                                  214, 222, 232, 238,
                                                  228, 218, 230, 228};
  const std::vector<std::uint64_t> reorder_hops = {196, 178, 198, 196,
                                                   182, 174, 174, 176,
                                                   178, 180, 184, 164,
                                                   172, 182, 172, 174};
  // Tracks frozen until the first re-partition (after step 6), then
  // re-anchors toward the re-sorted hops.
  const std::vector<std::uint64_t> lazy_hops = {198, 200, 212, 208,
                                                214, 218, 174, 180,
                                                182, 186, 186, 202,
                                                216, 182, 176, 186};
  for (std::size_t t = 0; t < 16; ++t) {
    EXPECT_EQ(r.steps[t].moves, moves[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].frozen_nfi.count, counts[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].reorder_nfi.count, counts[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].lazy_nfi.count, counts[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].frozen_nfi.hops, frozen_hops[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].reorder_nfi.hops, reorder_hops[t]) << "step " << t;
    EXPECT_EQ(r.steps[t].lazy_nfi.hops, lazy_hops[t]) << "step " << t;
  }
  const DynamicsStepResult& last = r.steps.back();
  EXPECT_EQ(last.frozen_ffi.total().hops, 41792u);
  EXPECT_EQ(last.reorder_ffi.total().hops, 40604u);
  EXPECT_EQ(last.lazy_ffi.total().hops, 40712u);
  EXPECT_EQ(last.frozen_ffi.total().count, 45290u);
  EXPECT_EQ(last.reorder_ffi.total().count, 45290u);
  EXPECT_EQ(last.lazy_ffi.total().count, 45290u);
  EXPECT_EQ(last.lazy_repartitions, 2u);
  EXPECT_DOUBLE_EQ(last.frozen_displaced, 0.034);
}

TEST(Golden, SamplerFirstParticlesAreFrozen) {
  // The exact first three particles of each paper distribution for seed
  // 2024 at level 8 — freezing the whole RNG + rejection pipeline.
  dist::SampleConfig cfg;
  cfg.count = 3;
  cfg.level = 8;
  cfg.seed = 2024;
  const auto u = dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  const auto n = dist::sample_particles<2>(dist::DistKind::kNormal, cfg);
  const auto e =
      dist::sample_particles<2>(dist::DistKind::kExponential, cfg);
  ASSERT_EQ(u.size(), 3u);
  ASSERT_EQ(n.size(), 3u);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(u[0], make_point(149, 100));
  EXPECT_EQ(u[1], make_point(230, 150));
  EXPECT_EQ(u[2], make_point(232, 140));
  EXPECT_EQ(n[0], make_point(86, 161));
  EXPECT_EQ(n[1], make_point(108, 116));
  EXPECT_EQ(n[2], make_point(106, 121));
  EXPECT_EQ(e[0], make_point(48, 83));
  EXPECT_EQ(e[1], make_point(9, 47));
  EXPECT_EQ(e[2], make_point(8, 53));
}

}  // namespace
}  // namespace sfc::core
