// Property tests that every curve implementation must satisfy: a level-k
// curve is a bijection between the grid and [0, 4^k), with point() the
// exact inverse of index().
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sfc/curve.hpp"

namespace sfc {
namespace {

using PropertyParam = std::tuple<CurveKind, unsigned>;

class CurveBijectivity : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(CurveBijectivity, IndexIsBijectiveAndInverseMatches) {
  const auto [kind, level] = GetParam();
  const auto curve = make_curve<2>(kind);
  const std::uint64_t n = grid_size<2>(level);
  const std::uint32_t side = 1u << level;

  std::vector<bool> seen(n, false);
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const Point2 p = make_point(x, y);
      const std::uint64_t idx = curve->index(p, level);
      ASSERT_LT(idx, n) << curve->name() << " point " << to_string(p);
      ASSERT_FALSE(seen[idx])
          << curve->name() << " maps two points to index " << idx;
      seen[idx] = true;
      ASSERT_EQ(curve->point(idx, level), p)
          << curve->name() << " inverse broken at " << to_string(p);
    }
  }
}

TEST_P(CurveBijectivity, PointThenIndexRoundTrips) {
  const auto [kind, level] = GetParam();
  const auto curve = make_curve<2>(kind);
  const std::uint64_t n = grid_size<2>(level);
  for (std::uint64_t idx = 0; idx < n; ++idx) {
    const Point2 p = curve->point(idx, level);
    ASSERT_TRUE(in_grid(p, level)) << curve->name() << " idx " << idx;
    ASSERT_EQ(curve->index(p, level), idx) << curve->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCurvesSmallLevels, CurveBijectivity,
    ::testing::Combine(::testing::ValuesIn(kAllCurves),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u)),
    [](const ::testing::TestParamInfo<PropertyParam>& inf) {
      std::string name(curve_name(std::get<0>(inf.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_L" + std::to_string(std::get<1>(inf.param));
    });

class CurveLargeLevel : public ::testing::TestWithParam<CurveKind> {};

// At large levels exhaustive checks are infeasible; verify the round trip
// on a pseudo-random sample plus the corners.
TEST_P(CurveLargeLevel, RoundTripSampledAtLevel16) {
  const auto curve = make_curve<2>(GetParam());
  constexpr unsigned kLevel = 16;
  const std::uint32_t side = 1u << kLevel;

  std::uint64_t state = 0x12345678u;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  std::vector<Point2> samples = {
      make_point(0, 0), make_point(side - 1, 0), make_point(0, side - 1),
      make_point(side - 1, side - 1), make_point(side / 2, side / 2)};
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(make_point(next() % side, next() % side));
  }
  for (const Point2& p : samples) {
    const std::uint64_t idx = curve->index(p, kLevel);
    ASSERT_LT(idx, grid_size<2>(kLevel));
    ASSERT_EQ(curve->point(idx, kLevel), p) << curve->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveLargeLevel,
                         ::testing::ValuesIn(kAllCurves),
                         [](const ::testing::TestParamInfo<CurveKind>& inf) {
                           std::string name(curve_name(inf.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CurveRegistry, NamesRoundTripThroughParser) {
  for (const CurveKind kind : kAllCurves) {
    const auto parsed = parse_curve(curve_name(kind));
    ASSERT_TRUE(parsed.has_value()) << curve_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(CurveRegistry, ParserAliases) {
  EXPECT_EQ(parse_curve("hilbert"), CurveKind::kHilbert);
  EXPECT_EQ(parse_curve("Z"), CurveKind::kMorton);
  EXPECT_EQ(parse_curve("morton"), CurveKind::kMorton);
  EXPECT_EQ(parse_curve("gray"), CurveKind::kGray);
  EXPECT_EQ(parse_curve("row"), CurveKind::kRowMajor);
  EXPECT_EQ(parse_curve("rowmajor"), CurveKind::kRowMajor);
  EXPECT_EQ(parse_curve("snake"), CurveKind::kSnake);
  EXPECT_FALSE(parse_curve("peano").has_value());
}

TEST(CurveRegistry, FactoryReportsKind) {
  for (const CurveKind kind : kAllCurves) {
    EXPECT_EQ(make_curve<2>(kind)->kind(), kind);
  }
  for (const CurveKind kind : kCurves3D) {
    EXPECT_EQ(make_curve<3>(kind)->kind(), kind);
  }
}

TEST(CurveRegistry, MooreIsTwoDimensionalOnly) {
  EXPECT_EQ(make_curve<2>(CurveKind::kMoore)->kind(), CurveKind::kMoore);
  EXPECT_THROW(make_curve<3>(CurveKind::kMoore), std::invalid_argument);
}

TEST(CurveBatch, IndicesOfMatchesPointwise) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  std::vector<Point2> pts = {make_point(0, 0), make_point(3, 1),
                             make_point(7, 7), make_point(2, 6)};
  const auto idx = indices_of(*curve, pts, 3);
  ASSERT_EQ(idx.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(idx[i], curve->index(pts[i], 3));
  }
}

}  // namespace
}  // namespace sfc
