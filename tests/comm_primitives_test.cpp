// Communication-primitive tests: pattern sizes, hand-computed ACD values,
// and topology-awareness of the Section VII generalization.
#include "comm/primitives.hpp"

#include <gtest/gtest.h>

#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "topology/linear.hpp"

namespace sfc::comm {
namespace {

TEST(Patterns, BroadcastHasPMinusOneMessages) {
  for (const topo::Rank p : {1u, 2u, 5u, 8u, 16u, 33u}) {
    EXPECT_EQ(pattern(Primitive::kBroadcastBinomial, p).size(), p - 1u)
        << "p=" << p;
  }
}

TEST(Patterns, BroadcastReachesEveryRankExactlyOnce) {
  const auto msgs = pattern(Primitive::kBroadcastBinomial, 16, 3);
  std::vector<int> received(16, 0);
  received[3] = 1;  // root holds the data initially
  for (const auto& m : msgs) {
    EXPECT_EQ(received[m.from], 1) << "sender must already have the data";
    ++received[m.to];
  }
  for (int r : received) EXPECT_EQ(r, 1);
}

TEST(Patterns, ReduceIsBroadcastReversed) {
  const auto bcast = pattern(Primitive::kBroadcastBinomial, 16);
  const auto reduce = pattern(Primitive::kReduceBinomial, 16);
  ASSERT_EQ(bcast.size(), reduce.size());
  for (std::size_t i = 0; i < bcast.size(); ++i) {
    EXPECT_EQ(bcast[i].from, reduce[i].to);
    EXPECT_EQ(bcast[i].to, reduce[i].from);
  }
}

TEST(Patterns, ScatterGatherSizes) {
  EXPECT_EQ(pattern(Primitive::kScatter, 10).size(), 9u);
  EXPECT_EQ(pattern(Primitive::kGather, 10).size(), 9u);
}

TEST(Patterns, AllToAllSize) {
  EXPECT_EQ(pattern(Primitive::kAllToAll, 8).size(), 8u * 7u);
}

TEST(Patterns, RingAllreduceSize) {
  // 2(p-1) steps x p messages per step.
  EXPECT_EQ(pattern(Primitive::kRingAllreduce, 6).size(), 2u * 5u * 6u);
  EXPECT_TRUE(pattern(Primitive::kRingAllreduce, 1).empty());
}

TEST(Patterns, ParallelPrefixSize) {
  // Hillis–Steele on p=8: rounds send 7 + 6 + 4 messages.
  EXPECT_EQ(pattern(Primitive::kParallelPrefix, 8).size(), 17u);
}

TEST(Patterns, HaloSize) {
  EXPECT_EQ(pattern(Primitive::kHaloExchange1D, 5).size(), 8u);
}

TEST(PatternTotals, AllToAllOnBusHandComputed) {
  // Bus of 3: ordered pairs (0,1)x2, (1,2)x2 cost 1; (0,2)x2 cost 2.
  const topo::BusTopology bus(3);
  const auto totals = pattern_totals(bus, pattern(Primitive::kAllToAll, 3));
  EXPECT_EQ(totals.count, 6u);
  EXPECT_EQ(totals.hops, 8u);
  EXPECT_DOUBLE_EQ(totals.acd(), 8.0 / 6.0);
}

TEST(PatternTotals, RingAllreduceIsAllSingleHopsOnRing) {
  // Every ring-allreduce message goes to the ring successor: ACD must be
  // exactly 1 when the topology *is* the ring.
  const topo::RingTopology ring(8);
  EXPECT_DOUBLE_EQ(primitive_acd(ring, Primitive::kRingAllreduce), 1.0);
}

TEST(PatternTotals, RingAllreduceSuffersOnBus) {
  // On the bus the wrap message (p-1 -> 0) costs p-1 hops each step.
  const topo::BusTopology bus(8);
  const double acd = primitive_acd(bus, Primitive::kRingAllreduce);
  EXPECT_GT(acd, 1.0);
  // Per step: 7 messages of 1 hop + the wrap message (7 -> 0) of 7 hops.
  EXPECT_DOUBLE_EQ(acd, (7.0 + 7.0) / 8.0);
}

TEST(PatternTotals, BroadcastOnHypercubeIsAllOneHop) {
  // Binomial broadcast maps perfectly onto the hypercube from root 0:
  // every transfer flips exactly one address bit.
  const auto cube = topo::make_topology<2>(topo::TopologyKind::kHypercube, 32,
                                           nullptr);
  EXPECT_DOUBLE_EQ(primitive_acd(*cube, Primitive::kBroadcastBinomial, 0),
                   1.0);
}

TEST(PatternTotals, SfcRankingChangesPrimitiveAcd) {
  // Section VII: the processor-order SFC matters for generic primitives
  // too. Compare halo-exchange ACD on a torus ranked by Hilbert vs
  // row-major: Hilbert ranking keeps ring neighbors physically adjacent.
  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  const auto row = make_curve<2>(CurveKind::kRowMajor);
  const auto torus_h = topo::make_topology<2>(topo::TopologyKind::kTorus, 64,
                                              hilbert.get());
  const auto torus_r =
      topo::make_topology<2>(topo::TopologyKind::kTorus, 64, row.get());
  const double h = primitive_acd(*torus_h, Primitive::kHaloExchange1D);
  const double r = primitive_acd(*torus_r, Primitive::kHaloExchange1D);
  EXPECT_DOUBLE_EQ(h, 1.0);  // Hilbert neighbors are grid neighbors
  EXPECT_GT(r, 1.0);         // row-major pays at each row wrap
}

TEST(PatternTotals, EmptyPatternIsZero) {
  const topo::BusTopology bus(4);
  const auto totals = pattern_totals(bus, {});
  EXPECT_EQ(totals.count, 0u);
  EXPECT_DOUBLE_EQ(totals.acd(), 0.0);
}

TEST(Patterns, RecursiveDoublingSizePowerOfTwo) {
  // log2(p) rounds x p messages each.
  EXPECT_EQ(pattern(Primitive::kAllreduceRecDouble, 8).size(), 3u * 8u);
  EXPECT_EQ(pattern(Primitive::kAllreduceRecDouble, 16).size(), 4u * 16u);
}

TEST(Patterns, RecursiveDoublingHandlesNonPowerOfTwo) {
  // p=10: 2 fold-ins + log2(8)*8 + 2 unfolds.
  EXPECT_EQ(pattern(Primitive::kAllreduceRecDouble, 10).size(),
            2u + 3u * 8u + 2u);
}

TEST(Patterns, RecursiveDoublingIsOneHopOnHypercube) {
  // Every round pairs ranks differing in exactly one bit.
  const auto cube = topo::make_topology<2>(topo::TopologyKind::kHypercube,
                                           16, nullptr);
  EXPECT_DOUBLE_EQ(primitive_acd(*cube, Primitive::kAllreduceRecDouble),
                   1.0);
}

TEST(Patterns, AllGatherRingSizeAndRingAcd) {
  EXPECT_EQ(pattern(Primitive::kAllGatherRing, 6).size(), 5u * 6u);
  const topo::RingTopology ring(6);
  EXPECT_DOUBLE_EQ(primitive_acd(ring, Primitive::kAllGatherRing), 1.0);
}

TEST(Patterns, Halo2DSizeOnPerfectSquare) {
  // 4x4 rank grid: 2 * (2 * 4 * 3) directed messages.
  EXPECT_EQ(pattern(Primitive::kHaloExchange2D, 16).size(), 48u);
}

TEST(Patterns, Halo2DMatchesMeshWhenRankedRowMajor) {
  // With row-major processor ranking the rank grid IS the physical grid,
  // so every 2-D halo message is one hop on the mesh.
  const auto row = make_curve<2>(CurveKind::kRowMajor);
  const auto mesh =
      topo::make_topology<2>(topo::TopologyKind::kMesh, 64, row.get());
  EXPECT_DOUBLE_EQ(primitive_acd(*mesh, Primitive::kHaloExchange2D), 1.0);
}

TEST(Patterns, Halo2DSuffersUnderHilbertRanking) {
  // The flip side of SFC ranking: a primitive whose natural structure is
  // the row-major grid pays when ranks follow the Hilbert traversal.
  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  const auto mesh =
      topo::make_topology<2>(topo::TopologyKind::kMesh, 64, hilbert.get());
  EXPECT_GT(primitive_acd(*mesh, Primitive::kHaloExchange2D), 1.0);
}

TEST(Registry, NamesParseBack) {
  EXPECT_EQ(parse_primitive("broadcast"), Primitive::kBroadcastBinomial);
  EXPECT_EQ(parse_primitive("alltoall"), Primitive::kAllToAll);
  EXPECT_EQ(parse_primitive("scan"), Primitive::kParallelPrefix);
  EXPECT_FALSE(parse_primitive("gossip").has_value());
  for (const Primitive p : kAllPrimitives) {
    EXPECT_FALSE(primitive_name(p).empty());
  }
}

}  // namespace
}  // namespace sfc::comm
