// Full-factorial pipeline sweep: every {particle curve, topology,
// distribution} combination at toy scale must run cleanly and satisfy the
// structural invariants — the breadth net under all the targeted tests.
#include <gtest/gtest.h>

#include <tuple>

#include "core/acd.hpp"

namespace sfc::core {
namespace {

using SweepParam = std::tuple<CurveKind, topo::TopologyKind, dist::DistKind>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, RunsAndSatisfiesInvariants) {
  const auto [curve, topology, distribution] = GetParam();
  Scenario2 s;
  s.particles = 500;
  s.level = 6;
  s.procs = 64;
  s.particle_curve = curve;
  s.processor_curve = curve;
  s.topology = topology;
  s.distribution = distribution;
  s.radius = 1;
  s.seed = 99;

  const auto r = compute_acd<2>(s);

  // Structure: both models produce communications; averages are finite,
  // non-negative, and bounded by the network diameter.
  const auto net = topo::make_topology<2>(topology, s.procs,
                                          make_curve<2>(curve).get());
  EXPECT_GT(r.nfi.count, 0u);
  EXPECT_GT(r.ffi.total().count, 0u);
  EXPECT_GE(r.nfi_acd(), 0.0);
  EXPECT_LE(r.nfi_acd(), static_cast<double>(net->diameter()));
  EXPECT_LE(r.ffi_acd(), static_cast<double>(net->diameter()));
  // Anterpolation mirrors interpolation exactly.
  EXPECT_EQ(r.ffi.interpolation, r.ffi.anterpolation);
  // Determinism.
  const auto again = compute_acd<2>(s);
  EXPECT_EQ(again.nfi, r.nfi);
  EXPECT_EQ(again.ffi.total(), r.ffi.total());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweep,
    ::testing::Combine(::testing::ValuesIn(kAllCurves),
                       ::testing::ValuesIn(topo::kAllTopologies),
                       ::testing::ValuesIn(dist::kAllDistributions)),
    [](const ::testing::TestParamInfo<SweepParam>& inf) {
      std::string name(curve_name(std::get<0>(inf.param)));
      name += "_";
      name += topo::topology_name(std::get<1>(inf.param));
      name += "_";
      name += dist_name(std::get<2>(inf.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sfc::core
